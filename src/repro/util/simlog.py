"""Structured simulator log.

xSim prints informational messages on the command line when notable
simulated events occur — e.g. the time and rank of an injected process
failure, or of an ``MPI_Abort``.  :class:`SimLog` records those messages as
structured entries (so tests and the experiment harness can assert on them)
and optionally echoes them to a stream like the original tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import IO, Iterator


@dataclass(frozen=True)
class LogEntry:
    """One informational simulator message."""

    time: float
    """Virtual time (seconds) the event occurred at."""
    category: str
    """Machine-matchable kind, e.g. ``"failure"``, ``"abort"``, ``"detect"``."""
    rank: int | None
    """Simulated MPI rank concerned, or ``None`` for whole-simulation events."""
    message: str

    def render(self) -> str:
        """The command-line form of the message."""
        where = f"rank {self.rank}" if self.rank is not None else "simulator"
        return f"[xsim {self.time:14.6f}s {where}] {self.category}: {self.message}"


@dataclass
class SimLog:
    """Append-only event log with category filtering.

    Parameters
    ----------
    stream:
        If given, every entry is also written there as it is logged,
        mirroring xSim's command-line output.
    """

    stream: IO[str] | None = None
    entries: list[LogEntry] = field(default_factory=list)

    def log(self, time: float, category: str, message: str, rank: int | None = None) -> None:
        """Append (and optionally echo) one entry."""
        entry = LogEntry(time=time, category=category, rank=rank, message=message)
        self.entries.append(entry)
        if self.stream is not None:
            print(entry.render(), file=self.stream)

    def category(self, category: str) -> list[LogEntry]:
        """All entries of one category, in log order."""
        return [e for e in self.entries if e.category == category]

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)
