"""Descriptive statistics in the shapes the paper reports.

Two consumers:

* The Finject-style fault-injection campaign (paper Table I) reports the
  count, minimum, maximum, mean, median, mode, and population standard
  deviation of injections-to-victim-failure — :func:`summarize` produces
  exactly those fields.
* xSim prints per-virtual-process timing statistics (minimum, maximum,
  average) at simulator shutdown — :class:`TimingStats` accumulates those
  online without storing every sample.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class SummaryStats:
    """Table-I-style summary of a sample (population standard deviation)."""

    count: int
    total: float
    minimum: float
    maximum: float
    mean: float
    median: float
    mode: float
    stddev: float

    def rows(self) -> list[tuple[str, str]]:
        """Render the Table I field/value rows (values like the paper's)."""

        def num(x: float) -> str:
            return f"{int(x)}" if float(x).is_integer() else f"{x:.2f}"

        return [
            ("Victims", num(self.count)),
            ("Injections", num(self.total)),
            ("Minimum", num(self.minimum)),
            ("Maximum", num(self.maximum)),
            ("Mean", f"{self.mean:.2f}"),
            ("Median", num(self.median)),
            ("Mode", num(self.mode)),
            ("Std.Dev.", f"{self.stddev:.2f}"),
        ]


def _median(sorted_xs: Sequence[float]) -> float:
    n = len(sorted_xs)
    mid = n // 2
    if n % 2 == 1:
        return float(sorted_xs[mid])
    return (sorted_xs[mid - 1] + sorted_xs[mid]) / 2.0


def summarize(samples: Iterable[float]) -> SummaryStats:
    """Compute the Table-I statistics for ``samples``.

    ``mode`` is the smallest most-frequent value (deterministic tie-break).
    ``stddev`` is the population standard deviation, matching the paper's
    reported sigma for its 100-victim campaign.

    Degenerate inputs yield well-defined zero-variance stats instead of
    raising or propagating NaN (adaptive exploration batches routinely
    produce empty and single-sample strata): an empty sample returns
    all-zero fields with ``count=0``, and a single sample returns that
    value for min/max/mean/median/mode with ``stddev=0.0``.
    """
    xs = sorted(float(x) for x in samples)
    if not xs:
        return SummaryStats(
            count=0, total=0.0, minimum=0.0, maximum=0.0,
            mean=0.0, median=0.0, mode=0.0, stddev=0.0,
        )
    n = len(xs)
    total = math.fsum(xs)
    mean = total / n
    # max(0.0, ...) guards the sqrt against tiny negative rounding residue.
    var = max(0.0, math.fsum((x - mean) ** 2 for x in xs) / n)
    counts = Counter(xs)
    best = max(counts.values())
    mode = min(x for x, c in counts.items() if c == best)
    return SummaryStats(
        count=n,
        total=total,
        minimum=xs[0],
        maximum=xs[-1],
        mean=mean,
        median=_median(xs),
        mode=mode,
        stddev=math.sqrt(var),
    )


class TimingStats:
    """Online min/max/average accumulator for per-VP timing statistics.

    xSim prints these three values during simulator shutdown both for
    normal termination and after a simulated :func:`MPI_Abort`.
    """

    __slots__ = ("count", "minimum", "maximum", "_total")

    def __init__(self) -> None:
        self.count = 0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._total = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        self.count += 1
        self._total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def average(self) -> float:
        return self._total / self.count if self.count else math.nan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimingStats(count={self.count}, min={self.minimum!r}, "
            f"max={self.maximum!r}, avg={self.average!r})"
        )
