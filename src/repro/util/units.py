"""Unit parsing and formatting for sizes, times, and rates.

The simulator's public configuration accepts human-readable strings such as
``"256 kB"``, ``"1us"``, or ``"32 GB/s"`` — the values the paper quotes for
the simulated machine — while all internal arithmetic is done in plain SI
base units (bytes, seconds, bytes/second) as ``float``/``int``.

Decimal (kB, MB, ...) and binary (KiB, MiB, ...) prefixes are both
supported.  The paper's "256 kB" eager threshold is interpreted as decimal
kilobytes (256,000 bytes) exactly as written; callers wanting 2**18 can say
``"256 KiB"``.
"""

from __future__ import annotations

import re

from repro.util.errors import ConfigurationError

_DECIMAL = {"": 1, "k": 10**3, "m": 10**6, "g": 10**9, "t": 10**12, "p": 10**15}
_BINARY = {"ki": 2**10, "mi": 2**20, "gi": 2**30, "ti": 2**40, "pi": 2**50}

_TIME_UNITS = {
    "ns": 1e-9,
    "us": 1e-6,
    "µs": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
    "min": 60.0,
    "h": 3600.0,
    "d": 86400.0,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*([A-Za-zµ]*)\s*$")


def parse_size(value: int | float | str) -> int:
    """Parse a byte size such as ``"256 kB"`` or ``"64 MiB"`` into bytes.

    Numeric inputs are passed through (rounded to an integer byte count).
    The unit is case-insensitive except that a bare ``b`` suffix always
    means bytes (bits are not supported).
    """
    if isinstance(value, (int, float)):
        if value < 0:
            raise ConfigurationError(f"size must be non-negative, got {value!r}")
        return int(round(value))
    m = _SIZE_RE.match(value)
    if not m:
        raise ConfigurationError(f"cannot parse size {value!r}")
    number = float(m.group(1))
    unit = m.group(2).lower()
    if unit.endswith("b"):
        unit = unit[:-1]
    if unit in _DECIMAL:
        scale = _DECIMAL[unit]
    elif unit in _BINARY:
        scale = _BINARY[unit]
    else:
        raise ConfigurationError(f"unknown size unit in {value!r}")
    return int(round(number * scale))


def parse_time(value: int | float | str) -> float:
    """Parse a duration such as ``"1us"`` or ``"3,000 s"`` into seconds."""
    if isinstance(value, (int, float)):
        return float(value)
    text = value.replace(",", "").strip()
    m = _SIZE_RE.match(text)
    if not m:
        raise ConfigurationError(f"cannot parse time {value!r}")
    number = float(m.group(1))
    unit = m.group(2)
    if unit == "":
        unit = "s"
    key = unit if unit in _TIME_UNITS else unit.lower()
    if key not in _TIME_UNITS:
        raise ConfigurationError(f"unknown time unit in {value!r}")
    return number * _TIME_UNITS[key]


def parse_rate(value: int | float | str) -> float:
    """Parse a bandwidth such as ``"32 GB/s"`` into bytes/second."""
    if isinstance(value, (int, float)):
        return float(value)
    text = value.strip()
    if text.lower().endswith("/s"):
        text = text[:-2]
    return float(parse_size(text))


def format_size(nbytes: float) -> str:
    """Format a byte count with a decimal prefix, e.g. ``262144 -> '262.1 kB'``."""
    n = float(nbytes)
    for prefix, scale in (("P", 10**15), ("T", 10**12), ("G", 10**9), ("M", 10**6), ("k", 10**3)):
        if abs(n) >= scale:
            return f"{n / scale:.1f} {prefix}B"
    return f"{n:.0f} B"


def format_time(seconds: float) -> str:
    """Format a duration compactly, choosing ns/us/ms/s as appropriate."""
    s = float(seconds)
    a = abs(s)
    if a == 0.0:
        return "0 s"
    if a < 1e-6:
        return f"{s * 1e9:.1f} ns"
    if a < 1e-3:
        return f"{s * 1e6:.1f} us"
    if a < 1.0:
        return f"{s * 1e3:.1f} ms"
    if a < 120.0:
        return f"{s:.3f} s"
    return f"{s:,.0f} s"
