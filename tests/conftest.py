"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import pytest
from hypothesis import HealthCheck, settings

# Property tests share the box with long simulation benchmarks; wall-clock
# deadlines would make them flaky under CPU contention.
settings.register_profile(
    "repro", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro")

from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim
from repro.pdes.engine import SimulationResult


@dataclass
class AppRun:
    """An executed simulation plus its plumbing, for assertions."""

    sim: XSim
    result: SimulationResult

    @property
    def world(self):
        return self.sim.world

    @property
    def engine(self):
        return self.sim.engine


def run_app(
    app,
    nranks: int = 2,
    args: tuple = (),
    system: SystemConfig | None = None,
    failures: list[tuple[int, float]] | None = None,
    seed: int = 0,
    start_time: float = 0.0,
    **system_overrides: Any,
) -> AppRun:
    """Run ``app`` on a small fast test machine and return the outcome."""
    if system is None:
        system = SystemConfig.small_test_system(nranks=nranks, **system_overrides)
    sim = XSim(system, seed=seed, start_time=start_time)
    for rank, time in failures or []:
        sim.inject_failure(rank, time)
    result = sim.run(app, args=args)
    return AppRun(sim=sim, result=result)


@pytest.fixture
def small_system() -> SystemConfig:
    """An 8-rank zero-overhead machine with a 1 s detection timeout."""
    return SystemConfig.small_test_system(nranks=8)
