"""MpiApi edge cases: lifecycle guards, timing helpers, memory, misc."""

import pytest

from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim
from repro.models.memory import RegionKind
from repro.util.errors import ConfigurationError
from tests.conftest import run_app


class TestLifecycleGuards:
    def test_op_before_init_rejected(self):
        def app(mpi):
            yield from mpi.barrier()  # no init

        with pytest.raises(ConfigurationError):
            run_app(app, nranks=1)

    def test_double_init_rejected(self):
        def app(mpi):
            yield from mpi.init()
            yield from mpi.init()

        with pytest.raises(ConfigurationError):
            run_app(app, nranks=1)

    def test_op_after_finalize_rejected(self):
        def app(mpi):
            yield from mpi.init()
            yield from mpi.finalize()
            yield from mpi.barrier()

        with pytest.raises(ConfigurationError):
            run_app(app, nranks=1)

    def test_initialized_finalized_flags(self):
        states = {}

        def app(mpi):
            states["pre"] = (mpi.initialized, mpi.finalized)
            yield from mpi.init()
            states["mid"] = (mpi.initialized, mpi.finalized)
            yield from mpi.finalize()
            states["post"] = (mpi.initialized, mpi.finalized)

        run = run_app(app, nranks=1)
        assert run.result.completed
        assert states == {
            "pre": (False, False),
            "mid": (True, False),
            "post": (True, True),
        }


class TestTimingHelpers:
    def test_wtime_advances_with_compute(self):
        def app(mpi):
            yield from mpi.init()
            t0 = mpi.wtime()
            yield from mpi.compute(2.5)
            t1 = mpi.wtime()
            yield from mpi.finalize()
            return t1 - t0

        run = run_app(app, nranks=1)
        assert run.result.exit_values[0] == pytest.approx(2.5)

    def test_compute_native_uses_slowdown(self):
        system = SystemConfig.small_test_system(nranks=1, slowdown=100.0)

        def app(mpi):
            yield from mpi.init()
            yield from mpi.compute_native(0.01)
            done = mpi.wtime()
            yield from mpi.finalize()
            return done

        run = run_app(app, nranks=1, system=system)
        assert run.result.exit_values[0] == pytest.approx(1.0)

    def test_negative_compute_rejected(self):
        def app(mpi):
            yield from mpi.init()
            yield from mpi.compute(-1.0)

        with pytest.raises(ConfigurationError):
            run_app(app, nranks=1)

    def test_file_operations_cost_time(self):
        from repro.models.filesystem import FileSystemModel

        system = SystemConfig.small_test_system(nranks=1).scaled(
            filesystem=FileSystemModel(
                aggregate_bandwidth=1e6, client_bandwidth=1e6, metadata_latency=0.5
            )
        )

        def app(mpi):
            yield from mpi.init()
            yield from mpi.file_write(1_000_000)  # 1 s + 0.5 s metadata
            t_w = mpi.wtime()
            yield from mpi.file_read(0)
            yield from mpi.file_delete()
            t_all = mpi.wtime()
            yield from mpi.finalize()
            return (t_w, t_all)

        run = run_app(app, nranks=1, system=system)
        t_w, t_all = run.result.exit_values[0]
        assert t_w == pytest.approx(1.5)
        assert t_all == pytest.approx(2.5)  # + read metadata + delete


class TestMemoryViaApi:
    def test_malloc_free(self):
        def app(mpi):
            yield from mpi.init()
            region = mpi.malloc("scratch", 4096, kind=RegionKind.UNUSED)
            footprint = mpi.world.memory.footprint(mpi.rank)
            mpi.free("scratch")
            after = mpi.world.memory.footprint(mpi.rank)
            yield from mpi.finalize()
            return (region.nbytes, footprint, after)

        run = run_app(app, nranks=1)
        assert run.result.exit_values[0] == (4096, 4096, 0)


class TestMiscApi:
    def test_comm_rank_size_helpers(self):
        def app(mpi):
            yield from mpi.init()
            out = (mpi.comm_rank(), mpi.comm_size())
            yield from mpi.finalize()
            return out

        run = run_app(app, nranks=3)
        assert run.result.exit_values[2] == (2, 3)

    def test_test_on_send_request(self):
        def app(mpi):
            yield from mpi.init()
            out = None
            if mpi.rank == 0:
                req = yield from mpi.isend(1, nbytes=8, tag=0)
                done, _ = yield from mpi.test(req)
                out = done
            else:
                yield from mpi.recv(0, tag=0)
            yield from mpi.finalize()
            return out

        run = run_app(app, nranks=2)
        assert run.result.exit_values[0] is True  # eager: locally complete

    def test_repr(self):
        def app(mpi):
            yield from mpi.init()
            assert "rank=0" in repr(mpi)
            yield from mpi.finalize()

        assert run_app(app, nranks=1).result.completed

    def test_non_member_communicator_rejected(self):
        def app(mpi):
            yield from mpi.init()
            out = None
            if mpi.rank == 1:
                # build a comm we are not a member of, then misuse it
                from repro.mpi.communicator import Communicator
                from repro.mpi.group import Group

                foreign = Communicator(Group([0]), 99)
                try:
                    mpi.irecv(0, tag=0, comm=foreign)
                except ConfigurationError:
                    out = "rejected"
            yield from mpi.finalize()
            return out

        run = run_app(app, nranks=2)
        assert run.result.exit_values[1] == "rejected"


class TestXsimTraceIntegration:
    def test_trace_through_facade(self):
        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 0:
                yield from mpi.send(1, nbytes=10, tag=0)
            else:
                yield from mpi.recv(0, tag=0)
            yield from mpi.finalize()

        sim = XSim(SystemConfig.small_test_system(nranks=2), record_trace=True)
        result = sim.run(app)
        assert result.completed
        assert len(sim.world.trace) >= 3
