"""The ring, stencil2d, collective_bench, and naive_cr applications."""

import pytest

from repro.apps.collective_bench import (
    CollectiveBenchConfig,
    CollectiveTiming,
    collective_bench,
)
from repro.apps.naive_cr import NaiveCrConfig, naive_cr
from repro.apps.ring import RingConfig, ring
from repro.apps.stencil2d import Stencil2dConfig, factor2, stencil2d
from repro.core.checkpoint.store import CheckpointStore
from repro.core.harness.config import SystemConfig
from repro.util.errors import ConfigurationError
from tests.conftest import run_app


class TestRing:
    def test_token_completes_rounds(self):
        run = run_app(ring, nranks=4, args=(RingConfig(rounds=3),))
        assert run.result.completed

    def test_hop_latency_accumulates(self):
        run = run_app(ring, nranks=4, args=(RingConfig(rounds=1),))
        # 4 hops of at least one 1 us link each
        assert run.result.exit_values[0] >= 4e-6

    def test_compute_per_hop(self):
        run = run_app(ring, nranks=4, args=(RingConfig(rounds=1, compute_per_hop=1.0),))
        assert run.result.exit_values[0] >= 3.0  # ranks 1..3 compute

    def test_failure_breaks_ring_and_aborts(self):
        run = run_app(
            ring, nranks=4, args=(RingConfig(rounds=5, compute_per_hop=1.0),), failures=[(2, 1.0)]
        )
        assert run.result.aborted

    def test_single_rank_ring(self):
        run = run_app(ring, nranks=1, args=(RingConfig(rounds=2),))
        assert run.result.completed


class TestStencil2d:
    def test_factor2(self):
        assert factor2(12) == (4, 3)
        assert factor2(9) == (3, 3)
        assert factor2(7) == (7, 1)

    def test_for_ranks(self):
        cfg = Stencil2dConfig.for_ranks(6)
        assert cfg.nranks == 6

    def test_modeled_run_completes(self):
        cfg = Stencil2dConfig.for_ranks(4, iterations=10, checkpoint_interval=5)
        store = CheckpointStore()
        run = run_app(stencil2d, nranks=4, args=(cfg, store))
        assert run.result.completed
        assert store.latest_valid(4) == 10

    def test_real_mode_conserves_only_interior_changes(self):
        cfg = Stencil2dConfig(
            grid=(8, 8),
            ranks=(2, 2),
            iterations=4,
            checkpoint_interval=2,
            data_mode="real",
        )
        run = run_app(stencil2d, nranks=4, args=(cfg, None))
        assert run.result.completed
        checks = run.result.exit_values
        assert all(isinstance(v, float) for v in checks.values())

    def test_real_mode_deterministic(self):
        cfg = Stencil2dConfig(
            grid=(8, 8), ranks=(2, 2), iterations=3, checkpoint_interval=3, data_mode="real"
        )
        a = run_app(stencil2d, nranks=4, args=(cfg, None)).result.exit_values
        b = run_app(stencil2d, nranks=4, args=(cfg, None)).result.exit_values
        assert a == b

    def test_wrong_rank_count_rejected(self):
        cfg = Stencil2dConfig.for_ranks(4)
        with pytest.raises(ConfigurationError):
            run_app(stencil2d, nranks=2, args=(cfg, None))

    def test_grid_divisibility_validated(self):
        with pytest.raises(ConfigurationError):
            Stencil2dConfig(grid=(10, 10), ranks=(3, 3))

    def test_face_and_checkpoint_sizes(self):
        cfg = Stencil2dConfig(grid=(16, 8), ranks=(2, 2))
        assert cfg.local_shape == (8, 4)
        assert cfg.face_bytes(0) == 4 * 8
        assert cfg.face_bytes(1) == 8 * 8
        assert cfg.checkpoint_nbytes == 256 + 32 * 8


class TestCollectiveBench:
    def test_timings_collected(self):
        cfg = CollectiveBenchConfig(operations=("barrier", "allreduce"), sizes=(8, 64))
        run = run_app(collective_bench, nranks=4, args=(cfg,))
        timing = run.result.exit_values[0]
        assert isinstance(timing, CollectiveTiming)
        assert set(timing.timings) == {
            ("barrier", 8),
            ("barrier", 64),
            ("allreduce", 8),
            ("allreduce", 64),
        }

    def test_larger_payload_not_faster(self):
        cfg = CollectiveBenchConfig(operations=("bcast",), sizes=(8, 10_000_000))
        run = run_app(collective_bench, nranks=4, args=(cfg,))
        t = run.result.exit_values[0].timings
        assert t[("bcast", 10_000_000)] >= t[("bcast", 8)]

    def test_all_supported_operations_run(self):
        cfg = CollectiveBenchConfig(
            operations=(
                "barrier",
                "bcast",
                "reduce",
                "allreduce",
                "gather",
                "allgather",
                "alltoall",
                "scan",
            ),
            sizes=(16,),
        )
        run = run_app(collective_bench, nranks=3, args=(cfg,))
        assert run.result.completed

    def test_unsupported_operation_rejected(self):
        cfg = CollectiveBenchConfig(operations=("teleport",), sizes=(8,))
        run = run_app(collective_bench, nranks=2, args=(cfg,))
        # a raised ValueError inside the app is a virtual process crash
        assert not run.result.completed


class TestNaiveCr:
    def test_segments_and_duration(self):
        cfg = NaiveCrConfig(work=100.0, tau=10.0, delta=2.0)
        store = CheckpointStore()
        run = run_app(naive_cr, nranks=2, args=(cfg, store))
        assert run.result.completed
        assert set(run.result.exit_values.values()) == {10}
        assert run.result.exit_time == pytest.approx(120.0, rel=0.01)

    def test_without_store_no_checkpoint_cost(self):
        cfg = NaiveCrConfig(work=100.0, tau=10.0, delta=2.0)
        run = run_app(naive_cr, nranks=1, args=(cfg, None))
        assert run.result.exit_time == pytest.approx(100.0, rel=0.01)

    def test_partial_last_segment(self):
        cfg = NaiveCrConfig(work=25.0, tau=10.0, delta=0.0)
        run = run_app(naive_cr, nranks=1, args=(cfg, CheckpointStore()))
        assert run.result.completed
        assert run.result.exit_values[0] == 3  # 10 + 10 + 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NaiveCrConfig(work=0.0)
        with pytest.raises(ConfigurationError):
            NaiveCrConfig(work=1.0, tau=-1.0)
