"""ASCII chart rendering."""

import pytest

from repro.util.ascii_chart import bar_chart, sparkline
from repro.util.errors import ConfigurationError


class TestBarChart:
    def test_scales_to_width(self):
        out = bar_chart([("a", 2.0), ("b", 4.0)], width=4)
        lines = out.splitlines()
        assert lines[0].count("█") == 2
        assert lines[1].count("█") == 4

    def test_labels_aligned(self):
        out = bar_chart([("short", 1.0), ("a-long-label", 2.0)], width=10)
        bars = [line.index("|") for line in out.splitlines()]
        assert len(set(bars)) == 1

    def test_values_rendered(self):
        out = bar_chart([("x", 5248.0)], width=5, unit=" s")
        assert "5,248 s" in out

    def test_zero_span_full_bars(self):
        out = bar_chart([("a", 3.0), ("b", 3.0)], width=6)
        for line in out.splitlines():
            assert line.count("█") == 6

    def test_min_max_scaling(self):
        out = bar_chart([("a", 100.0), ("b", 101.0)], width=10, zero_based=False)
        lines = out.splitlines()
        assert lines[0].count("█") < lines[1].count("█")

    def test_nonzero_gets_visible_bar(self):
        out = bar_chart([("tiny", 0.001), ("big", 1000.0)], width=10)
        assert out.splitlines()[0].count("█") >= 1

    def test_zero_value_no_bar(self):
        out = bar_chart([("none", 0.0), ("big", 10.0)], width=10)
        assert out.splitlines()[0].count("█") == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart([])
        with pytest.raises(ConfigurationError):
            bar_chart([("a", 1.0)], width=0)
        with pytest.raises(ConfigurationError):
            bar_chart([("a", float("nan"))])


class TestSparkline:
    def test_profile(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▆█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_extremes(self):
        s = sparkline([0, 100])
        assert s[0] == "▁"
        assert s[1] == "█"

    def test_length_preserved(self):
        assert len(sparkline(range(17))) == 17

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sparkline([])
        with pytest.raises(ConfigurationError):
            sparkline([float("inf")])
