"""Per-VP CPU busy/idle time accounting (the power model's input)."""

import pytest

from repro.core.harness.config import SystemConfig
from repro.models.filesystem import FileSystemModel
from repro.pdes.engine import Engine
from repro.pdes.requests import Advance, Block
from tests.conftest import run_app


class TestEngineBusyAccounting:
    def test_busy_advances_counted(self):
        eng = Engine()

        def worker():
            yield Advance(3.0)
            yield Advance(2.0, busy=False)
            yield Advance(1.0, busy=True)

        vp = eng.spawn(worker())
        result = eng.run()
        assert vp.busy_time == pytest.approx(4.0)
        assert result.busy_times[0] == pytest.approx(4.0)
        assert vp.clock == pytest.approx(6.0)

    def test_blocked_time_is_idle(self):
        eng = Engine()

        def waiter():
            yield Block("w")
            yield Advance(1.0)

        vp = eng.spawn(waiter())
        eng.schedule(10.0, lambda: eng.wake(vp, 10.0))
        eng.run()
        assert vp.busy_time == pytest.approx(1.0)
        assert vp.clock == pytest.approx(11.0)

    def test_busy_never_exceeds_wall(self):
        eng = Engine()

        def worker():
            for _ in range(5):
                yield Advance(1.0)
                yield Advance(0.5, busy=False)

        vp = eng.spawn(worker())
        eng.run()
        assert vp.busy_time <= vp.clock
        assert vp.busy_time == pytest.approx(5.0)


class TestMpiBusyAccounting:
    def test_compute_is_busy_waits_are_idle(self):
        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 0:
                yield from mpi.compute(2.0)
                yield from mpi.send(1, nbytes=8, tag=0)
            else:
                yield from mpi.recv(0, tag=0)  # waits ~2 s idle
            yield from mpi.finalize()

        run = run_app(app, nranks=2)
        busy = run.result.busy_times
        assert busy[0] == pytest.approx(2.0, abs=0.01)
        assert busy[1] == pytest.approx(0.0, abs=0.01)  # pure waiting
        # but rank 1's clock advanced past the wait
        assert run.result.end_times[1] >= 2.0

    def test_file_io_is_idle(self):
        system = SystemConfig.small_test_system(nranks=1).scaled(
            filesystem=FileSystemModel(
                aggregate_bandwidth=1e6, client_bandwidth=1e6, metadata_latency=0.0
            )
        )

        def app(mpi):
            yield from mpi.init()
            yield from mpi.compute(1.0)
            yield from mpi.file_write(5_000_000)  # 5 s of I/O wait
            yield from mpi.finalize()

        run = run_app(app, nranks=1, system=system)
        assert run.result.end_times[0] == pytest.approx(6.0, abs=0.01)
        assert run.result.busy_times[0] == pytest.approx(1.0, abs=0.01)

    def test_detection_timeout_is_idle(self):
        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 0:
                yield from mpi.recv(1, tag=0)
            else:
                yield from mpi.compute(5.0)
            yield from mpi.finalize()

        run = run_app(app, nranks=2, failures=[(1, 1.0)])
        # rank 0 waited 5 s + 1 s timeout, all idle
        assert run.result.busy_times[0] == pytest.approx(0.0, abs=0.01)

    def test_software_overheads_are_busy(self):
        system = SystemConfig.small_test_system(
            nranks=2, send_overhead_native=1e-3, recv_overhead_native=1e-3
        )

        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 0:
                for t in range(10):
                    yield from mpi.send(1, nbytes=8, tag=t)
            else:
                for t in range(10):
                    yield from mpi.recv(0, tag=t)
            yield from mpi.finalize()

        run = run_app(app, nranks=2, system=system)
        # sender: 10 x o_send (+1 for the finalize barrier send)
        assert run.result.busy_times[0] == pytest.approx(11e-3, abs=2e-3)
        # receiver pays o_recv per message
        assert run.result.busy_times[1] == pytest.approx(11e-3, abs=2e-3)
