"""The content-addressed result cache (repro.cache).

Covers the correctness promises the cache makes over raw memoization:

* the key normalizes execution parallelism away (serial and sharded
  requests of one cell share an entry) but keeps every result- and
  payload-relevant field;
* a warm hit is equal to recomputation — digest, summary — and the
  result digest is host-independent (no wall times, transports, or CPU
  counts leak in);
* damaged state (truncated blob, missing blob, stale index row, foreign
  schema version) degrades to recomputation with a warning, never to a
  crash or a stale answer;
* ``gc`` evicts in the documented order (age pass first, then LRU by
  last hit) and ``verify`` spots every kind of damage;
* the sweep path partitions cached vs to-compute cells and annotates
  summaries without changing the result values;
* concurrent writers sharing one directory cannot corrupt it.
"""

from __future__ import annotations

import multiprocessing
import sqlite3
import warnings

import pytest

from repro.cache import (
    cache_dir_from_env,
    cache_enabled,
    open_cache,
    resolve_cache,
)
from repro.cache.store import (
    CACHE_SCHEMA_VERSION,
    CacheStats,
    ResultCache,
    cache_key,
    cache_salt,
    cacheable,
)
from repro.run.backends import run_scenario
from repro.run.scenario import Scenario
from repro.run.sweep import run_sweep


SMALL = Scenario(ranks=8, iterations=30, interval=10)


@pytest.fixture()
def store(tmp_path):
    return ResultCache(tmp_path / "cache")


def _fill(store, scenario=SMALL):
    """Compute-and-store one cell; returns the cold outcome."""
    return run_scenario(scenario, cache=store)


# ----------------------------------------------------------------------
# key derivation
# ----------------------------------------------------------------------
class TestCacheKey:
    def test_execution_fields_normalized_out(self):
        base = cache_key(SMALL)
        assert cache_key(SMALL.with_(shards=4, shard_transport="fork")) == base
        assert cache_key(SMALL.with_(shards=2, shard_transport="inline")) == base
        assert cache_key(SMALL.with_(jobs=8)) == base
        assert cache_key(SMALL.with_(backend="sharded-shm", shards=2)) == base
        # trace_out implies observe=True (payload-relevant), so it shares
        # the *observed* entry, not the bare one — the path itself is
        # normalized out.
        assert cache_key(SMALL.with_(trace_out="/tmp/t.json")) == cache_key(
            SMALL.with_(observe=True)
        )
        assert cache_key(SMALL.with_(trace_out="/tmp/a.json")) == cache_key(
            SMALL.with_(trace_out="/tmp/b.jsonl")
        )

    def test_result_relevant_fields_stay_in_key(self):
        base = cache_key(SMALL)
        assert cache_key(SMALL.with_(seed=1)) != base
        assert cache_key(SMALL.with_(interval=20)) != base
        assert cache_key(SMALL.with_(ranks=16)) != base
        assert cache_key(SMALL.with_(failures="2@100s")) != base
        assert cache_key(SMALL.with_(engine="flat")) != base

    def test_payload_relevant_instrumentation_stays_in_key(self):
        # observe/trace_detail/check change what the blob must contain.
        base = cache_key(SMALL)
        assert cache_key(SMALL.with_(observe=True)) != base
        assert cache_key(SMALL.with_(observe=True, trace_detail=True)) != base
        assert cache_key(SMALL.with_(check=True)) != base

    def test_salt_invalidates(self, monkeypatch):
        base = cache_key(SMALL)
        monkeypatch.setattr("repro.cache.store.ENGINE_SALT", "pdes-test")
        assert cache_key(SMALL) != base
        assert "engine=pdes-test" in cache_salt()

    def test_record_events_not_cacheable(self):
        assert cacheable(SMALL)
        assert not cacheable(SMALL.with_(record_events=True))


# ----------------------------------------------------------------------
# hit equivalence & host independence
# ----------------------------------------------------------------------
class TestHitEquivalence:
    def test_warm_hit_equals_cold_compute(self, store):
        cold = _fill(store)
        warm = run_scenario(SMALL, cache=store)
        assert not cold.metadata.get("cache_hit")
        assert warm.metadata.get("cache_hit") is True
        assert warm.digest() == cold.digest()
        assert warm.summary() == cold.summary()
        assert (store.stats.hits, store.stats.misses, store.stats.stores) == (1, 1, 1)

    def test_cross_backend_sharing(self, store):
        cold = _fill(store)
        sharded = SMALL.with_(shards=2, shard_transport="inline")
        warm = run_scenario(sharded, cache=store)
        assert warm.metadata.get("cache_hit") is True
        assert warm.digest() == cold.digest()

    def test_result_digest_excludes_host_metadata(self, store):
        """The digest a hit is verified against must not depend on how or
        where the cell was computed: transports, worker fallbacks, wall
        times, and CPU counts live in metadata, never in the digest."""
        serial = run_scenario(SMALL)
        sharded = run_scenario(SMALL.with_(shards=2, shard_transport="inline"))
        assert serial.digest() == sharded.digest()
        assert serial.metadata != sharded.metadata  # metadata does differ...
        mutated = run_scenario(SMALL)
        mutated.metadata["host_cpus"] = 999999
        mutated.metadata["wall_s"] = 123.456
        mutated.metadata["shard_transport"] = "carrier-pigeon"
        assert mutated.digest() == serial.digest()  # ...and is excluded

    def test_record_events_bypasses_cache(self, store):
        scenario = SMALL.with_(record_events=True)
        first = run_scenario(scenario, cache=store)
        second = run_scenario(scenario, cache=store)
        assert first.sim is not None and second.sim is not None
        assert not second.metadata.get("cache_hit")
        assert store.stats.stores == 0


# ----------------------------------------------------------------------
# robustness: damaged state degrades to recomputation
# ----------------------------------------------------------------------
class TestRobustness:
    def test_truncated_blob_recomputes(self, store):
        cold = _fill(store)
        key = cache_key(SMALL)
        path = store.blob_path(key)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.warns(RuntimeWarning, match="unusable"):
            again = run_scenario(SMALL, cache=store)
        assert not again.metadata.get("cache_hit")
        assert again.digest() == cold.digest()
        assert store.stats.corrupt == 1
        # the damaged entry was dropped and the recompute re-stored it
        assert run_scenario(SMALL, cache=store).metadata.get("cache_hit") is True

    def test_missing_blob_recomputes(self, store):
        cold = _fill(store)
        store.blob_path(cache_key(SMALL)).unlink()
        with pytest.warns(RuntimeWarning, match="blob unreadable"):
            again = run_scenario(SMALL, cache=store)
        assert not again.metadata.get("cache_hit")
        assert again.digest() == cold.digest()

    def test_garbage_blob_recomputes(self, store):
        cold = _fill(store)
        store.blob_path(cache_key(SMALL)).write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="undecodable"):
            again = run_scenario(SMALL, cache=store)
        assert not again.metadata.get("cache_hit")
        assert again.digest() == cold.digest()

    def test_stale_index_digest_recomputes(self, store):
        """An index row whose digest disagrees with the blob must never be
        served (the blob could be a stale atomic-rename survivor)."""
        _fill(store)
        store._conn().execute(
            "UPDATE entries SET result_digest = 'deadbeef'"
        )
        with pytest.warns(RuntimeWarning, match="digest"):
            assert store.lookup(SMALL) is None
        assert store.stats.corrupt == 1

    def test_warning_logged_into_recomputed_run(self, store):
        _fill(store)
        store.blob_path(cache_key(SMALL)).write_bytes(b"junk")
        with pytest.warns(RuntimeWarning):
            again = run_scenario(SMALL, cache=store)
        log = again.last_result.log
        assert any(
            r.category == "cache" and "recomputing" in r.message
            for r in log.entries
        )

    def test_schema_mismatch_disables_cache(self, tmp_path, store):
        _fill(store)
        store._conn().execute("UPDATE meta SET value = '999' WHERE key = 'schema'")
        reopened = ResultCache(store.root)
        assert reopened.disabled_reason is not None
        with pytest.warns(RuntimeWarning, match="schema version 999"):
            outcome = run_scenario(SMALL, cache=reopened)
        assert not outcome.metadata.get("cache_hit")
        # store is a no-op too: nothing was overwritten in the foreign dir
        assert reopened.stats.stores == 0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # disabled warning fires once
            assert reopened.lookup(SMALL) is None

    def test_lookup_never_raises_on_unreadable_index(self, tmp_path):
        root = tmp_path / "broken"
        root.mkdir()
        (root / "index.sqlite3").write_bytes(b"this is not sqlite")
        cache = ResultCache(root)
        assert cache.disabled_reason is not None
        with pytest.warns(RuntimeWarning):
            assert cache.lookup(SMALL) is None
        assert cache.store(SMALL, run_scenario(SMALL)) is False


# ----------------------------------------------------------------------
# verify & gc
# ----------------------------------------------------------------------
class TestVerifyGc:
    def _three_entries(self, store):
        scenarios = [SMALL, SMALL.with_(seed=1), SMALL.with_(seed=2)]
        for s in scenarios:
            _fill(store, s)
        return scenarios

    def test_verify_clean(self, store):
        self._three_entries(store)
        assert store.verify() == []

    def test_verify_finds_and_prunes_damage(self, store):
        scenarios = self._three_entries(store)
        bad_key = cache_key(scenarios[1])
        store.blob_path(bad_key).write_bytes(b"junk")
        issues = store.verify()
        assert [i.key for i in issues] == [bad_key]
        assert store.index_stats()["entries"] == 3  # audit-only
        store.verify(prune=True)
        assert store.index_stats()["entries"] == 2

    def test_gc_max_age_evicts_idle_entries(self, store):
        scenarios = self._three_entries(store)
        keys = [cache_key(s) for s in scenarios]
        conn = store._conn()
        now = 1_000_000.0
        for key, last_hit in zip(keys, (now - 500.0, now - 50.0, now - 5.0)):
            conn.execute(
                "UPDATE entries SET last_hit = ? WHERE key = ?", (last_hit, key)
            )
        res = store.gc(max_age=100.0, now=now)
        assert res.removed == [(keys[0], "age")]
        assert res.kept == 2

    def test_gc_max_bytes_evicts_lru_first(self, store):
        scenarios = self._three_entries(store)
        keys = [cache_key(s) for s in scenarios]
        conn = store._conn()
        now = 1_000_000.0
        # Hit order (oldest first): seed=2, seed=0, seed=1.
        for key, last_hit in zip(keys, (now - 50.0, now - 5.0, now - 500.0)):
            conn.execute(
                "UPDATE entries SET last_hit = ? WHERE key = ?", (last_hit, key)
            )
        sizes = {e["key"]: e["nbytes"] for e in store.entries()}
        keep_bytes = sizes[keys[1]]  # room for exactly the most recent
        res = store.gc(max_bytes=keep_bytes, now=now)
        assert res.removed == [(keys[2], "bytes"), (keys[0], "bytes")]
        assert res.kept == 1
        assert store.index_stats()["entries"] == 1
        assert [e["key"] for e in store.entries()] == [keys[1]]

    def test_gc_combined_age_then_size(self, store):
        scenarios = self._three_entries(store)
        keys = [cache_key(s) for s in scenarios]
        conn = store._conn()
        now = 1_000_000.0
        for key, last_hit in zip(keys, (now - 500.0, now - 50.0, now - 5.0)):
            conn.execute(
                "UPDATE entries SET last_hit = ? WHERE key = ?", (last_hit, key)
            )
        res = store.gc(max_bytes=0, max_age=100.0, now=now)
        # age pass takes keys[0], size pass the rest in LRU order
        assert res.removed == [
            (keys[0], "age"),
            (keys[1], "bytes"),
            (keys[2], "bytes"),
        ]
        assert res.kept == 0 and res.kept_bytes == 0

    def test_gc_deterministic_tie_break(self, store):
        self._three_entries(store)
        conn = store._conn()
        conn.execute("UPDATE entries SET last_hit = 1.0, created = 1.0")
        res = store.gc(max_bytes=0)
        assert [k for k, _ in res.removed] == sorted(k for k, _ in res.removed)


# ----------------------------------------------------------------------
# sweep integration
# ----------------------------------------------------------------------
class TestSweepPartition:
    GRID = {"interval": [10, 20], "seed": [0, 1]}

    def test_cold_then_warm(self, store):
        cold = run_sweep(SMALL, self.GRID, cache=store)
        assert all(not s["cached"] for _, s in cold)
        warm_store = ResultCache(store.root)
        warm = run_sweep(SMALL, self.GRID, cache=warm_store)
        assert all(s["cached"] for _, s in warm)
        assert all(s["saved_s"] > 0.0 for _, s in warm)
        assert (warm_store.stats.hits, warm_store.stats.misses) == (4, 0)
        strip = lambda d: {k: v for k, v in d.items() if k not in ("cached", "saved_s")}
        assert [strip(s) for _, s in cold] == [strip(s) for _, s in warm]

    def test_partial_warm(self, store):
        run_sweep(SMALL, {"interval": [10], "seed": [0, 1]}, cache=store)
        mixed = run_sweep(SMALL, self.GRID, cache=ResultCache(store.root))
        by_cell = {
            (sc.interval, sc.seed): s["cached"] for sc, s in mixed
        }
        assert by_cell == {
            (10, 0): True, (10, 1): True, (20, 0): False, (20, 1): False,
        }

    def test_no_cache_summaries_unannotated(self):
        pairs = run_sweep(SMALL, {"interval": [10]}, cache=False)
        assert "cached" not in pairs[0][1]

    def test_parallel_workers_share_store(self, store):
        cold = run_sweep(SMALL.with_(jobs=2), self.GRID, cache=store)
        warm = run_sweep(SMALL.with_(jobs=2), self.GRID, cache=ResultCache(store.root))
        assert all(s["cached"] for _, s in warm)
        assert [s["result_digest"] for _, s in cold] == [
            s["result_digest"] for _, s in warm
        ]


# ----------------------------------------------------------------------
# policy & plumbing
# ----------------------------------------------------------------------
class TestPolicy:
    def test_cache_enabled_env(self):
        assert not cache_enabled({})
        assert not cache_enabled({"XSIM_CACHE": ""})
        assert not cache_enabled({"XSIM_CACHE": "0"})
        assert cache_enabled({"XSIM_CACHE": "1"})
        assert cache_enabled({"XSIM_CACHE": "yes"})

    def test_cache_dir_env(self, tmp_path):
        assert cache_dir_from_env({"XSIM_CACHE_DIR": str(tmp_path)}) == tmp_path
        default = cache_dir_from_env({})
        assert default.name == "xsim"

    def test_resolve_cache(self, store, monkeypatch):
        monkeypatch.delenv("XSIM_CACHE", raising=False)
        assert resolve_cache(False) is None
        assert resolve_cache(store) is store
        assert resolve_cache(None) is None  # env off by default

    def test_open_cache_memoized(self, tmp_path):
        a = open_cache(tmp_path / "c")
        b = open_cache(tmp_path / "c")
        assert a is b

    def test_stats_record_keys(self):
        record = CacheStats(hits=3, misses=1, lookup_s=0.4).as_record()
        assert record["hit_rate"] == 0.75
        assert record["lookup_mean_s"] == pytest.approx(0.1)
        for key in ("hits", "misses", "stores", "corrupt", "store_errors",
                    "hit_bytes", "store_bytes", "lookup_s", "store_s"):
            assert key in record

    def test_index_stats_shape(self, store):
        _fill(store)
        run_scenario(SMALL, cache=store)
        st = store.index_stats()
        assert st["entries"] == 1
        assert st["hits"] == 1
        assert st["bytes"] > 0
        assert st["saved_s"] > 0.0
        assert st["schema"] == CACHE_SCHEMA_VERSION
        assert st["modes"] == {"single": 1}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    SWEEP = [
        "sweep", "--ranks", "8", "--iterations", "30",
        "--set", "interval=10,20",
    ]

    def test_sweep_source_column_and_summary(self, tmp_path, capsys):
        from repro.cli import main

        flags = ["--cache", "--cache-dir", str(tmp_path / "c")]
        assert main(self.SWEEP + flags) == 0
        cold = capsys.readouterr().out
        assert cold.count("computed") == 2
        assert "cache: 0/2 cells served from cache (0% hit rate)" in cold
        assert main(self.SWEEP + flags) == 0
        warm = capsys.readouterr().out
        assert warm.count("cached") >= 2
        assert "cache: 2/2 cells served from cache (100% hit rate)" in warm
        # stripped of the source column + summary line, the tables match
        strip = lambda text: [
            line.rsplit("|", 1)[0].rstrip()
            for line in text.splitlines()
            if "|" in line
        ]
        assert strip(cold) == strip(warm)

    def test_sweep_without_cache_has_no_column(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("XSIM_CACHE", raising=False)
        assert main(self.SWEEP) == 0
        out = capsys.readouterr().out
        assert "source" not in out and "cache:" not in out

    def test_app_hit_line(self, tmp_path, capsys):
        from repro.cli import main

        run = ["app", "--ranks", "8", "--iterations", "30", "--interval", "10",
               "--cache", "--cache-dir", str(tmp_path / "c")]
        assert main(run) == 0
        assert "cache: miss (stored" in capsys.readouterr().out
        assert main(run) == 0
        assert "cache: hit " in capsys.readouterr().out

    def test_cache_stats_verify_gc(self, tmp_path, capsys):
        from repro.cli import main

        dirflag = ["--cache-dir", str(tmp_path / "c")]
        main(self.SWEEP + ["--cache"] + dirflag)
        capsys.readouterr()
        assert main(["cache", "stats"] + dirflag) == 0
        out = capsys.readouterr().out
        assert "entries:  2" in out and "salt:" in out
        assert main(["cache", "verify"] + dirflag) == 0
        assert "all servable" in capsys.readouterr().out
        assert main(["cache", "gc", "--max-bytes", "0"] + dirflag) == 0
        assert "evicted 2 entries" in capsys.readouterr().out
        assert main(["cache", "stats"] + dirflag) == 0
        assert "entries:  0" in capsys.readouterr().out

    def test_cache_verify_reports_damage(self, tmp_path, capsys):
        from repro.cli import main

        root = tmp_path / "c"
        dirflag = ["--cache-dir", str(root)]
        main(self.SWEEP + ["--cache"] + dirflag)
        capsys.readouterr()
        cache = ResultCache(root)
        victim = cache.entries()[0]["key"]
        cache.blob_path(victim).write_bytes(b"junk")
        assert main(["cache", "verify"] + dirflag) == 1
        assert "unservable" in capsys.readouterr().out
        assert main(["cache", "verify", "--prune"] + dirflag) == 0
        assert main(["cache", "verify"] + dirflag) == 0

    def test_cache_gc_requires_a_policy(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "gc", "--cache-dir", str(tmp_path / "c")]) == 2
        assert "--max-bytes" in capsys.readouterr().err


# ----------------------------------------------------------------------
# concurrency
# ----------------------------------------------------------------------
def _store_worker(args):
    root, seeds = args
    from repro.cache.store import ResultCache
    from repro.run.backends import run_scenario

    cache = ResultCache(root)
    for seed in seeds:
        run_scenario(SMALL.with_(seed=seed), cache=cache)
    return cache.stats.stores + cache.stats.hits


def test_concurrent_writers_one_directory(tmp_path):
    """Two worker processes hammering one cache directory — overlapping
    and disjoint keys — must leave a fully servable store."""
    root = str(tmp_path / "shared")
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(2) as pool:
        counts = pool.map(
            _store_worker, [(root, [0, 1, 2, 3]), (root, [2, 3, 4, 5])]
        )
    assert all(c == 4 for c in counts)
    cache = ResultCache(root)
    assert cache.index_stats()["entries"] == 6
    assert cache.verify() == []
    warm = run_scenario(SMALL.with_(seed=4), cache=cache)
    assert warm.metadata.get("cache_hit") is True
