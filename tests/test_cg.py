"""The conjugate-gradient proxy application."""

import numpy as np
import pytest

from repro.apps.cg import CgConfig, CgResult, cg, cg_serial_reference
from repro.core.checkpoint.store import CheckpointStore
from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig
from repro.core.restart import RestartDriver
from repro.util.errors import ConfigurationError
from tests.conftest import run_app


class TestCgConfig:
    def test_for_ranks(self):
        cfg = CgConfig.for_ranks(8)
        assert cfg.nranks == 8
        assert cfg.grid == (16, 16, 16)
        assert cfg.points_per_rank == 512

    def test_sizes(self):
        cfg = CgConfig(grid=(16, 8, 8), ranks=(2, 2, 2))
        assert cfg.local_shape == (8, 4, 4)
        assert cfg.face_bytes(0) == 4 * 4 * 8
        assert cfg.checkpoint_nbytes == 256 + 3 * 128 * 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CgConfig(grid=(10, 10, 10), ranks=(3, 2, 2))
        with pytest.raises(ConfigurationError):
            CgConfig(data_mode="fake")


class TestModeledCg:
    def test_runs_fixed_iterations(self):
        cfg = CgConfig.for_ranks(8, max_iterations=20, checkpoint_interval=10)
        run = run_app(cg, nranks=8, args=(cfg, CheckpointStore()))
        assert run.result.completed
        result = run.result.exit_values[0]
        assert isinstance(result, CgResult)
        assert result.iterations == 20
        assert result.residual_norm is None

    def test_allreduce_heavy_pattern(self):
        """CG's three allreduces per iteration dominate its traffic."""
        from repro.core.simulator import XSim

        cfg = CgConfig.for_ranks(8, max_iterations=10, checkpoint_interval=10)
        sim = XSim(SystemConfig.small_test_system(nranks=8), record_trace=True)
        sim.run(cg, args=(cfg, None))
        coll = sim.world.trace.messages(ctx=3)  # collective context
        pt2pt = [m for m in sim.world.trace.messages(ctx=2) if 21 <= m.tag <= 26]
        assert len(coll) > len(pt2pt) / 2  # collectives are a big share


class TestRealCg:
    def _cfg(self, **kw):
        defaults = dict(
            grid=(8, 8, 8),
            ranks=(2, 2, 2),
            max_iterations=60,
            tolerance=1e-9,
            checkpoint_interval=15,
            data_mode="real",
        )
        defaults.update(kw)
        return CgConfig(**defaults)

    def test_converges_and_matches_serial_reference(self):
        cfg = self._cfg()
        run = run_app(cg, nranks=8, args=(cfg, None))
        assert run.result.completed
        results = run.result.exit_values
        serial_x, serial_iters, serial_res = cg_serial_reference(cfg)
        any_rank = results[0]
        assert any_rank.converged
        assert any_rank.iterations == serial_iters
        # distributed solution norm equals the serial one
        dist_norm_sq = sum(r.solution_norm_sq for r in results.values())
        assert dist_norm_sq == pytest.approx(float((serial_x * serial_x).sum()), rel=1e-8)
        assert any_rank.residual_norm == pytest.approx(serial_res, rel=1e-6)

    def test_restart_resumes_and_still_converges(self):
        # ~0.32 s/iteration: first checkpoint (iteration 15) at ~4.8 s,
        # convergence (~32 iterations) at ~10 s
        cfg = self._cfg(native_seconds_per_point_iter=5e-3)
        system = SystemConfig.small_test_system(nranks=8)
        clean = run_app(cg, nranks=8, args=(cfg, None), system=system)
        clean_norm = sum(r.solution_norm_sq for r in clean.result.exit_values.values())

        driver = RestartDriver(
            system,
            cg,
            make_args=lambda store: (cfg, store),
            schedule=FailureSchedule.of((3, 6.0)),  # after the checkpoint
        )
        run = driver.run()
        assert run.completed
        assert run.restarts == 1
        restarted = [r for r in run.exit_values.values() if r.restarted_from > 0]
        assert restarted
        total = sum(r.solution_norm_sq for r in run.exit_values.values())
        assert total == pytest.approx(clean_norm, rel=1e-8)

    def test_residual_decreases_monotonically_enough(self):
        """CG on an SPD operator converges; fewer iterations, larger
        residual."""
        short = self._cfg(max_iterations=5, tolerance=0.0)
        longer = self._cfg(max_iterations=30, tolerance=0.0)
        r_short = run_app(cg, nranks=8, args=(short, None)).result.exit_values[0]
        r_long = run_app(cg, nranks=8, args=(longer, None)).result.exit_values[0]
        assert r_long.residual_norm < r_short.residual_norm

    def test_wrong_rank_count_rejected(self):
        cfg = self._cfg()
        with pytest.raises(ConfigurationError):
            run_app(cg, nranks=4, args=(cfg, None))


class TestSerialReference:
    def test_reference_solves_the_system(self):
        cfg = CgConfig(
            grid=(6, 6, 6), ranks=(1, 1, 1), max_iterations=200, tolerance=1e-10
        )
        x, iters, res = cg_serial_reference(cfg)
        assert iters < 200
        assert res < 1e-8
        # verify A x = b directly
        from repro.apps.cg import apply_laplacian, rhs_block

        b = rhs_block(cfg, 0)
        xg = np.zeros((8, 8, 8))
        xg[1:-1, 1:-1, 1:-1] = x
        assert np.allclose(apply_laplacian(xg), b, atol=1e-7)
