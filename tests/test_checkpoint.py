"""Checkpoint store, protocol, and Daly analysis."""

import math

import pytest

from repro.core.checkpoint.daly import (
    daly_higher_order_interval,
    daly_simple_interval,
    expected_completion_time,
    optimal_interval_by_search,
)
from repro.core.checkpoint.store import CheckpointStore, FileState
from repro.util.errors import CheckpointError, ConfigurationError


class TestCheckpointStore:
    def test_write_lifecycle(self):
        s = CheckpointStore()
        s.begin_write(100, 0, {"it": 100}, 512)
        assert s.state_of(100, 0) is FileState.PARTIAL
        s.commit_write(100, 0)
        assert s.state_of(100, 0) is FileState.COMPLETE
        f = s.read(100, 0)
        assert f.data == {"it": 100}
        assert f.nbytes == 512

    def test_read_corrupted_rejected(self):
        s = CheckpointStore()
        s.begin_write(1, 0, None, 10)
        with pytest.raises(CheckpointError):
            s.read(1, 0)

    def test_read_missing_rejected(self):
        with pytest.raises(CheckpointError):
            CheckpointStore().read(1, 0)

    def test_commit_unknown_rejected(self):
        with pytest.raises(CheckpointError):
            CheckpointStore().commit_write(1, 0)

    def test_validity_requires_all_ranks_complete(self):
        s = CheckpointStore()
        for r in range(3):
            s.begin_write(5, r, None, 10)
            s.commit_write(5, r)
        assert s.is_valid(5, 3)
        assert not s.is_valid(5, 4)  # rank 3 missing
        s.begin_write(6, 0, None, 10)  # partial file only
        assert not s.is_valid(6, 1)

    def test_validity_requires_exact_rank_set(self):
        """A set written by a wider job (files from ranks >= nranks) is
        not valid for a narrower restart: restoring only its low-rank
        files would silently drop part of the domain."""
        s = CheckpointStore()
        for r in range(4):  # written by a 4-rank job
            s.begin_write(7, r, None, 10)
            s.commit_write(7, r)
        assert s.is_valid(7, 4)
        assert not s.is_valid(7, 2)  # ranks 2,3 are leftovers
        assert s.latest_valid(2) is None

    def test_cleanup_deletes_leftover_wide_sets(self):
        s = CheckpointStore()
        for r in range(4):  # leftover from a wider job
            s.begin_write(10, r, None, 1)
            s.commit_write(10, r)
        for r in range(2):  # valid for the current 2-rank job
            s.begin_write(20, r, None, 1)
            s.commit_write(20, r)
        removed = s.cleanup_incomplete(nranks=2)
        assert removed == [10]
        # the high-rank files went with the set, not just ranks 0..1
        assert s.ranks_present(10) == []
        assert s.latest_valid(2) == 20

    def test_latest_valid_picks_largest(self):
        s = CheckpointStore()
        for cid in (100, 200, 300):
            for r in range(2):
                s.begin_write(cid, r, None, 10)
                s.commit_write(cid, r)
        s.begin_write(400, 0, None, 10)  # incomplete newest
        assert s.latest_valid(2) == 300
        assert s.latest_valid(3) is None

    def test_corrupted_files_listed(self):
        s = CheckpointStore()
        s.begin_write(1, 0, None, 10)
        s.begin_write(1, 1, None, 10)
        s.commit_write(1, 1)
        assert s.corrupted_files(1) == [0]

    def test_delete_single_and_set(self):
        s = CheckpointStore()
        for r in range(3):
            s.begin_write(1, r, None, 10)
        assert s.delete(1, 0) == 1
        assert s.delete(1, 0) == 0  # idempotent
        assert s.delete(1) == 2
        assert len(s) == 0

    def test_cleanup_incomplete_is_the_shell_script(self):
        s = CheckpointStore()
        for r in range(2):
            s.begin_write(10, r, None, 1)
            s.commit_write(10, r)
        s.begin_write(20, 0, None, 1)  # rank 1 never started: incomplete
        s.commit_write(20, 0)
        removed = s.cleanup_incomplete(nranks=2)
        assert removed == [20]
        assert s.latest_valid(2) == 10

    def test_counters_and_sizes(self):
        s = CheckpointStore()
        s.begin_write(1, 0, None, 100)
        s.begin_write(1, 1, None, 100)
        s.delete(1, 0)
        assert s.writes == 2
        assert s.deletes == 1
        assert s.total_bytes() == 100

    def test_ranks_present_and_ids(self):
        s = CheckpointStore()
        s.begin_write(2, 1, None, 1)
        s.begin_write(1, 0, None, 1)
        assert s.checkpoint_ids() == [1, 2]
        assert s.ranks_present(2) == [1]

    def test_negative_size_rejected(self):
        with pytest.raises(CheckpointError):
            CheckpointStore().begin_write(1, 0, None, -1)


class TestDaly:
    def test_simple_interval_formula(self):
        assert daly_simple_interval(10.0, 2000.0) == pytest.approx(200.0)

    def test_higher_order_close_to_simple_for_small_delta(self):
        simple = daly_simple_interval(1.0, 10_000.0)
        higher = daly_higher_order_interval(1.0, 10_000.0)
        assert higher == pytest.approx(simple, rel=0.05)

    def test_higher_order_degenerates_when_delta_large(self):
        assert daly_higher_order_interval(300.0, 100.0) == 100.0

    def test_expected_time_increases_with_failure_rate(self):
        t_reliable = expected_completion_time(1000.0, 100.0, 5.0, mttf=1e6)
        t_flaky = expected_completion_time(1000.0, 100.0, 5.0, mttf=1e3)
        assert t_flaky > t_reliable
        assert t_reliable >= 1000.0  # can't beat the raw work

    def test_expected_time_increases_with_checkpoint_cost(self):
        cheap = expected_completion_time(1000.0, 100.0, 1.0, mttf=5000.0)
        pricey = expected_completion_time(1000.0, 100.0, 50.0, mttf=5000.0)
        assert pricey > cheap

    def test_search_finds_near_daly_optimum(self):
        delta, mttf = 10.0, 3000.0
        tau_star = optimal_interval_by_search(work=10_000.0, delta=delta, mttf=mttf)
        daly = daly_higher_order_interval(delta, mttf)
        assert tau_star == pytest.approx(daly, rel=0.15)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            daly_simple_interval(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            daly_higher_order_interval(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            expected_completion_time(0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            optimal_interval_by_search(1.0, 1.0, 1.0, samples=3)

    def test_restart_cost_multiplies(self):
        base = expected_completion_time(1000.0, 100.0, 5.0, 2000.0, restart=0.0)
        with_restart = expected_completion_time(1000.0, 100.0, 5.0, 2000.0, restart=60.0)
        assert with_restart == pytest.approx(base * math.exp(60.0 / 2000.0))
