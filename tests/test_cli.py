"""The xsim-run command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for cmd in (["app"], ["table1"], ["table2"], ["arch"]):
            args = parser.parse_args(cmd)
            assert callable(args.fn)

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_app_options(self):
        args = build_parser().parse_args(
            ["app", "--app", "ring", "--ranks", "16", "--mttf", "100", "--collectives", "tree"]
        )
        assert args.app == "ring"
        assert args.ranks == 16
        assert args.mttf == 100.0
        assert args.collectives == "tree"


class TestCommands:
    def test_arch(self, capsys):
        assert main(["arch", "--ranks", "64"]) == 0
        out = capsys.readouterr().out
        assert "simulated MPI layer" in out
        assert "64 VPs" in out

    def test_table1(self, capsys):
        assert main(["table1", "--victims", "10"]) == 0
        out = capsys.readouterr().out
        assert "Victims" in out
        assert "Std.Dev." in out

    def test_app_ring(self, capsys):
        assert main(["app", "--app", "ring", "--ranks", "4", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "E1=" in out
        assert "completed=True" in out

    def test_app_heat3d_clean(self, capsys):
        assert (
            main(
                [
                    "app",
                    "--app",
                    "heat3d",
                    "--ranks",
                    "8",
                    "--iterations",
                    "10",
                    "--interval",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "completed=True" in out

    def test_app_heat3d_with_schedule(self, capsys):
        assert (
            main(
                [
                    "app",
                    "--app",
                    "heat3d",
                    "--ranks",
                    "8",
                    "--iterations",
                    "20",
                    "--interval",
                    "5",
                    "--xsim-failures",
                    "3@30s",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "failures=1" in out
        assert "restarts=1" in out
        assert "MPI process failure" in out  # informational message

    def test_app_stencil2d(self, capsys):
        assert (
            main(["app", "--app", "stencil2d", "--ranks", "4", "--iterations", "10",
                  "--interval", "5"])
            == 0
        )
        assert "completed=True" in capsys.readouterr().out

    def test_table2_tiny(self, capsys):
        # tiny scale so the test stays fast; full scale is a benchmark
        assert main(["table2", "--ranks", "8"]) == 0
        out = capsys.readouterr().out
        assert "MTTF_s" in out
        assert "paper E1" in out
