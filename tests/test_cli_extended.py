"""Additional CLI coverage: new apps, option plumbing, bench utilities."""

import pytest

from repro.cli import main


class TestCliApps:
    def test_cg_app(self, capsys):
        assert main(["app", "--app", "cg", "--ranks", "8", "--iterations", "5",
                     "--interval", "5"]) == 0
        assert "completed=True" in capsys.readouterr().out

    def test_cg_with_failure_schedule(self, capsys):
        assert main(["app", "--app", "cg", "--ranks", "8", "--iterations", "30",
                     "--interval", "10", "--xsim-failures", "2@20s"]) == 0
        out = capsys.readouterr().out
        assert "restarts=" in out

    def test_system_overrides_plumbed(self, capsys):
        assert main(["app", "--app", "ring", "--ranks", "4", "--iterations", "1",
                     "--topology", "crossbar", "--latency", "5us",
                     "--collectives", "tree", "--slowdown", "1"]) == 0
        assert "completed=True" in capsys.readouterr().out

    def test_env_failures_honoured(self, capsys, monkeypatch):
        monkeypatch.setenv("XSIM_FAILURES", "1@30s")
        assert main(["app", "--app", "heat3d", "--ranks", "8", "--iterations", "20",
                     "--interval", "5"]) == 0
        out = capsys.readouterr().out
        assert "failures=1" in out

    def test_mttf_mode(self, capsys):
        assert main(["app", "--app", "heat3d", "--ranks", "8", "--iterations", "50",
                     "--interval", "10", "--mttf", "150", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "E2=" in out
        assert "MTTF_a=" in out


class TestBenchUtil:
    def test_bench_ranks_default(self, monkeypatch):
        from benchmarks._util import bench_ranks

        monkeypatch.delenv("XSIM_BENCH_RANKS", raising=False)
        monkeypatch.delenv("XSIM_FULL_SCALE", raising=False)
        assert bench_ranks() == 512
        assert bench_ranks(default=64) == 64

    def test_bench_ranks_env_override(self, monkeypatch):
        from benchmarks._util import bench_ranks

        monkeypatch.setenv("XSIM_BENCH_RANKS", "4096")
        assert bench_ranks() == 4096

    def test_full_scale_wins(self, monkeypatch):
        from benchmarks._util import bench_ranks

        monkeypatch.setenv("XSIM_BENCH_RANKS", "4096")
        monkeypatch.setenv("XSIM_FULL_SCALE", "1")
        assert bench_ranks() == 32768

    def test_report_buffers(self):
        from benchmarks import _util

        before = len(_util.REPORT_BUFFER)
        _util.report("line-one", "line-two")
        assert _util.REPORT_BUFFER[before:] == ["line-one", "line-two"]
        del _util.REPORT_BUFFER[before:]
