"""Failure semantics inside collectives, across all algorithm families."""

import pytest

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.checkpoint.store import CheckpointStore
from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim
from tests.conftest import run_app

ALGOS = ["linear", "tree", "analytic"]


def barrier_app(mpi):
    yield from mpi.init()
    yield from mpi.compute(2.0 if mpi.rank == 3 else 10.0)  # rank 3 dies at 2
    yield from mpi.barrier()
    yield from mpi.compute(100.0)
    yield from mpi.finalize()


class TestBarrierWithFailure:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_member_failure_aborts_barrier(self, algo):
        system = SystemConfig.small_test_system(nranks=6, collective_algorithm=algo)
        run = run_app(barrier_app, nranks=6, system=system, failures=[(3, 1.0)])
        res = run.result
        assert res.aborted
        assert res.failures == [(3, 2.0)]
        # nobody escaped the barrier into the 100 s compute
        assert res.exit_time < 50.0

    @pytest.mark.parametrize("algo", ALGOS)
    def test_root_failure_aborts_barrier(self, algo):
        def app(mpi):
            yield from mpi.init()
            yield from mpi.compute(2.0 if mpi.rank == 0 else 10.0)
            yield from mpi.barrier()
            yield from mpi.finalize()

        system = SystemConfig.small_test_system(nranks=4, collective_algorithm=algo)
        run = run_app(app, nranks=4, system=system, failures=[(0, 1.0)])
        assert run.result.aborted

    @pytest.mark.parametrize("algo", ALGOS)
    def test_reduce_with_failed_contributor(self, algo):
        def app(mpi):
            yield from mpi.init()
            yield from mpi.compute(2.0 if mpi.rank == 2 else 5.0)
            total = yield from mpi.allreduce(1, nbytes=8)
            yield from mpi.finalize()
            return total

        system = SystemConfig.small_test_system(nranks=4, collective_algorithm=algo)
        run = run_app(app, nranks=4, system=system, failures=[(2, 1.0)])
        assert run.result.aborted  # default handler: any member death aborts


class TestAlgorithmConsistency:
    """The three families must produce identical results and closely
    agreeing timings on the heat workload (the full-scale fast-path
    argument)."""

    def _e1(self, algo, nranks=64, interval=125):
        system = SystemConfig.paper_system(nranks=nranks, collective_algorithm=algo)
        wl = HeatConfig.paper_workload(checkpoint_interval=interval, nranks=nranks)
        sim = XSim(system)
        res = sim.run(heat3d, args=(wl, CheckpointStore()))
        assert res.completed
        return res.exit_time

    def test_analytic_tracks_linear_on_heat3d(self):
        lin = self._e1("linear")
        ana = self._e1("analytic")
        assert ana == pytest.approx(lin, rel=0.01)

    def test_tree_is_fastest_on_heat3d(self):
        assert self._e1("tree") <= self._e1("linear") + 1e-9

    @pytest.mark.parametrize("algo", ALGOS)
    def test_real_data_results_identical_across_algorithms(self, algo):
        cfg = HeatConfig(
            grid=(8, 8, 8),
            ranks=(2, 2, 2),
            iterations=4,
            checkpoint_interval=2,
            exchange_interval=1,
            data_mode="real",
        )
        system = SystemConfig.small_test_system(nranks=8, collective_algorithm=algo)
        run = run_app(heat3d, nranks=8, args=(cfg, CheckpointStore()), system=system)
        checksum = sum(s.checksum for s in run.result.exit_values.values())
        # compare against the linear-algorithm ground truth
        base_sys = SystemConfig.small_test_system(nranks=8, collective_algorithm="linear")
        base = run_app(heat3d, nranks=8, args=(cfg, CheckpointStore()), system=base_sys)
        base_sum = sum(s.checksum for s in base.result.exit_values.values())
        assert checksum == pytest.approx(base_sum, rel=1e-12)
