"""Edge cases: degenerate sizes and empty simulations."""

import math

import pytest

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.checkpoint.store import CheckpointStore
from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim
from repro.pdes.engine import Engine
from tests.conftest import run_app


class TestEmptySimulation:
    def test_engine_with_no_vps(self):
        result = Engine().run()
        assert result.exit_time == 0.0
        assert result.completed  # vacuously
        assert result.event_count == 0
        assert math.isinf(result.timing.minimum)

    def test_engine_start_time_preserved(self):
        result = Engine(start_time=42.0).run()
        assert result.exit_time == 42.0


class TestSingleRankWorld:
    def test_heat3d_single_rank(self):
        cfg = HeatConfig.paper_workload(nranks=1, iterations=10, checkpoint_interval=5)
        assert cfg.ranks == (1, 1, 1)
        run = run_app(heat3d, nranks=1, args=(cfg, CheckpointStore()))
        assert run.result.completed

    def test_single_rank_collectives_trivial(self):
        def app(mpi):
            yield from mpi.init()
            assert (yield from mpi.allreduce(7, nbytes=8)) == 7
            assert (yield from mpi.gather("x", nbytes=1)) == ["x"]
            assert (yield from mpi.allgather("x", nbytes=1)) == ["x"]
            assert (yield from mpi.scan(3, nbytes=8)) == 3
            assert (yield from mpi.alltoall(["self"], nbytes=4)) == ["self"]
            yield from mpi.barrier()
            yield from mpi.finalize()
            return True

        run = run_app(app, nranks=1)
        assert run.result.exit_values[0] is True

    def test_single_rank_failure(self):
        def app(mpi):
            yield from mpi.init()
            yield from mpi.compute(10.0)
            yield from mpi.finalize()

        run = run_app(app, nranks=1, failures=[(0, 1.0)])
        assert run.result.failures == [(0, 10.0)]
        assert not run.result.aborted  # nobody left to detect and abort


class TestDegenerateWorkloads:
    def test_heat3d_one_iteration(self):
        cfg = HeatConfig.paper_workload(nranks=8, iterations=1, checkpoint_interval=1)
        run = run_app(heat3d, nranks=8, args=(cfg, CheckpointStore()))
        assert run.result.completed

    def test_checkpoint_interval_beyond_iterations(self):
        store = CheckpointStore()
        cfg = HeatConfig.paper_workload(nranks=8, iterations=10, checkpoint_interval=1000)
        run = run_app(heat3d, nranks=8, args=(cfg, store))
        assert run.result.completed
        assert store.checkpoint_ids() == [10]  # the final-result dump

    def test_zero_byte_messages(self):
        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 0:
                yield from mpi.send(1, nbytes=0, tag=0)
            else:
                got = yield from mpi.recv(0, tag=0)
                assert got is None
            yield from mpi.finalize()

        assert run_app(app, nranks=2).result.completed

    def test_paper_system_exact_dims_only_at_full_scale(self):
        assert SystemConfig.paper_system().topology_dims == (32, 32, 32)
        assert SystemConfig.paper_system(nranks=100).topology_dims is None
        sim = XSim(SystemConfig.paper_system(nranks=100))
        assert sim.world.network.topology.nnodes >= 100
