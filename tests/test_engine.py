"""The PDES engine: stepping, clocks, failure/abort activation semantics."""

import math

import pytest

from repro.pdes.context import VpState
from repro.pdes.engine import Engine
from repro.pdes.requests import Advance, Block
from repro.util.errors import ConfigurationError, DeadlockError, SimulationError


def sleeper(duration):
    def gen():
        yield Advance(duration)
        return duration

    return gen()


class TestBasicExecution:
    def test_single_vp_advances_clock(self):
        eng = Engine()
        vp = eng.spawn(sleeper(2.5))
        result = eng.run()
        assert result.completed
        assert vp.clock == pytest.approx(2.5)
        assert result.exit_time == pytest.approx(2.5)

    def test_exit_value_captured(self):
        eng = Engine()
        eng.spawn(sleeper(1.0))
        result = eng.run()
        assert result.exit_values[0] == 1.0

    def test_ranks_assigned_in_spawn_order(self):
        eng = Engine()
        vps = [eng.spawn(sleeper(1.0)) for _ in range(4)]
        assert [vp.rank for vp in vps] == [0, 1, 2, 3]

    def test_zero_advance_is_free_control_point(self):
        def gen():
            yield Advance(0.0)
            yield Advance(0.0)

        eng = Engine()
        vp = eng.spawn(gen())
        eng.run()
        assert vp.clock == 0.0
        assert vp.state is VpState.DONE

    def test_negative_advance_rejected(self):
        def gen():
            yield Advance(-1.0)

        eng = Engine()
        eng.spawn(gen())
        with pytest.raises(SimulationError):
            eng.run()

    def test_unknown_yield_rejected(self):
        def gen():
            yield "nonsense"

        eng = Engine()
        eng.spawn(gen())
        with pytest.raises(SimulationError):
            eng.run()

    def test_start_time_initialises_all_clocks(self):
        eng = Engine(start_time=100.0)
        vp = eng.spawn(sleeper(1.0))
        result = eng.run()
        assert vp.clock == pytest.approx(101.0)
        assert result.start_time == 100.0

    def test_bad_start_time_rejected(self):
        with pytest.raises(ConfigurationError):
            Engine(start_time=-1.0)
        with pytest.raises(ConfigurationError):
            Engine(start_time=math.inf)

    def test_run_twice_rejected(self):
        eng = Engine()
        eng.spawn(sleeper(1.0))
        eng.run()
        with pytest.raises(SimulationError):
            eng.run()

    def test_spawn_after_run_rejected(self):
        eng = Engine()
        eng.spawn(sleeper(1.0))
        eng.run()
        with pytest.raises(SimulationError):
            eng.spawn(sleeper(1.0))

    def test_event_count_reported(self):
        eng = Engine()
        eng.spawn(sleeper(1.0))
        result = eng.run()
        assert result.event_count >= 2  # start + resume

    def test_timing_statistics(self):
        eng = Engine()
        for d in (1.0, 2.0, 3.0):
            eng.spawn(sleeper(d))
        result = eng.run()
        assert result.timing.minimum == pytest.approx(1.0)
        assert result.timing.maximum == pytest.approx(3.0)
        assert result.timing.average == pytest.approx(2.0)
        assert "min=" in result.timing_report()


class TestBlockWake:
    def test_wake_delivers_value(self):
        got = []

        def waiter():
            value = yield Block("waiting")
            got.append(value)

        eng = Engine()
        vp = eng.spawn(waiter())

        def wake_later():
            eng.wake(vp, 5.0, value="hello")

        eng.schedule(0.0, wake_later)
        eng.run()
        assert got == ["hello"]
        assert vp.clock == pytest.approx(5.0)

    def test_wake_raises_exception_into_vp(self):
        caught = []

        class Boom(Exception):
            pass

        def waiter():
            try:
                yield Block("waiting")
            except Boom:
                caught.append(True)

        eng = Engine()
        vp = eng.spawn(waiter())
        eng.schedule(0.0, lambda: eng.wake(vp, 1.0, exc=Boom()))
        eng.run()
        assert caught == [True]

    def test_wake_non_blocked_rejected(self):
        eng = Engine()
        vp = eng.spawn(sleeper(10.0))
        with pytest.raises(SimulationError):
            eng.wake(vp, 1.0)

    def test_schedule_into_past_rejected(self):
        eng = Engine()
        eng.spawn(sleeper(1.0))

        def bad():
            eng.schedule(0.0, lambda: None)

        eng.schedule(0.5, lambda: eng.schedule(0.1, lambda: None))
        with pytest.raises(SimulationError):
            eng.run()

    def test_deadlock_detection(self):
        def waiter():
            yield Block("never woken")

        eng = Engine()
        eng.spawn(waiter())
        eng.spawn(sleeper(1.0))
        with pytest.raises(DeadlockError) as err:
            eng.run()
        assert "never woken" in str(err.value)


class TestFailureActivation:
    """Paper §IV-B semantics."""

    def test_scheduled_time_is_earliest_actual_at_control_point(self):
        """A VP computing past the failure time fails when the simulator
        regains control, with its clock at the advance's end."""
        eng = Engine()
        vp = eng.spawn(sleeper(10.0))
        eng.schedule_failure(0, 4.0)
        result = eng.run()
        assert vp.state is VpState.FAILED
        assert result.failures == [(0, 10.0)]  # not 4.0

    def test_blocked_vp_fails_at_exactly_scheduled_time(self):
        def waiter():
            yield Block("forever")

        eng = Engine()
        vp = eng.spawn(waiter())
        eng.spawn(sleeper(20.0))
        eng.schedule_failure(0, 7.0)
        result = eng.run()
        assert vp.state is VpState.FAILED
        assert result.failures == [(0, 7.0)]

    def test_failure_before_start_kills_at_startup(self):
        eng = Engine()
        vp = eng.spawn(sleeper(5.0))
        eng.spawn(sleeper(1.0))
        eng.schedule_failure(0, 0.0)
        result = eng.run()
        assert vp.state is VpState.FAILED
        assert result.failures[0][0] == 0

    def test_earliest_of_multiple_schedules_wins(self):
        eng = Engine()
        eng.spawn(sleeper(100.0))
        eng.schedule_failure(0, 50.0)
        eng.schedule_failure(0, 10.0)
        result = eng.run()
        assert result.failures == [(0, 100.0)]
        assert eng.vps[0].time_of_failure == 10.0

    def test_failure_after_completion_is_noop(self):
        eng = Engine()
        eng.spawn(sleeper(1.0))
        eng.schedule_failure(0, 5.0)
        result = eng.run()
        assert result.completed
        assert result.failures == []

    def test_failure_before_engine_start_time_rejected(self):
        eng = Engine(start_time=100.0)
        eng.spawn(sleeper(1.0))
        with pytest.raises(ConfigurationError):
            eng.schedule_failure(0, 50.0)

    def test_fail_now_kills_at_current_clock(self):
        eng = Engine()
        eng.spawn(sleeper(3.0))
        eng.schedule(2.0, lambda: eng.fail_now(0, "test"))
        result = eng.run()
        # fail_now fires at t=2 while rank 0 is mid-advance; its clock is
        # still at the advance start (0.0), and the kill is immediate.
        assert result.failures[0][0] == 0
        assert eng.vps[0].state is VpState.FAILED

    def test_failure_runs_listeners(self):
        seen = []
        eng = Engine()
        eng.spawn(sleeper(5.0))
        eng.failure_listeners.append(lambda vp, t: seen.append((vp.rank, t)))
        eng.schedule_failure(0, 1.0)
        eng.run()
        assert seen == [(0, 5.0)]

    def test_failure_logged_with_time_and_rank(self):
        eng = Engine()
        eng.spawn(sleeper(5.0))
        eng.schedule_failure(0, 1.0)
        result = eng.run()
        entries = result.log.category("failure")
        assert len(entries) == 1
        assert entries[0].rank == 0
        assert entries[0].time == pytest.approx(5.0)

    def test_generator_finally_runs_on_kill(self):
        cleaned = []

        def gen():
            try:
                yield Advance(10.0)
            finally:
                cleaned.append(True)

        eng = Engine()
        eng.spawn(gen())
        eng.schedule_failure(0, 1.0)
        eng.run()
        assert cleaned == [True]


class TestAbortActivation:
    """Paper §IV-D semantics."""

    def _engine_with(self, *gens):
        eng = Engine()
        for g in gens:
            eng.spawn(g)
        return eng

    def test_blocked_vps_released_at_abort_time(self):
        def waiter():
            yield Block("w")

        def aborter():
            yield Advance(5.0)
            eng.request_abort(5.0, 1)
            yield Block("aborting")

        eng = Engine()
        vp0 = eng.spawn(waiter())
        eng.spawn(aborter())
        result = eng.run()
        assert result.aborted
        assert result.abort_time == pytest.approx(5.0)
        assert result.abort_rank == 1
        assert vp0.state is VpState.ABORTED
        assert vp0.end_time == pytest.approx(5.0)

    def test_computing_vp_aborts_at_next_control_point(self):
        """Exit time can exceed the abort time (paper: statistics printed
        after *all* processes aborted)."""

        def long_compute():
            yield Advance(100.0)

        def aborter():
            yield Advance(1.0)
            eng.request_abort(1.0, 1)
            yield Block("aborting")

        eng = Engine()
        vp0 = eng.spawn(long_compute())
        eng.spawn(aborter())
        result = eng.run()
        assert vp0.state is VpState.ABORTED
        assert vp0.end_time == pytest.approx(100.0)
        assert result.exit_time == pytest.approx(100.0)
        assert result.abort_time == pytest.approx(1.0)

    def test_first_abort_wins(self):
        def aborter(me, t):
            def gen():
                yield Advance(t)
                eng.request_abort(t, me)
                yield Block("aborting")

            return gen()

        eng = Engine()
        eng.spawn(aborter(0, 2.0))
        eng.spawn(aborter(1, 1.0))
        result = eng.run()
        assert result.abort_rank == 1
        assert result.abort_time == pytest.approx(1.0)

    def test_abort_logged(self):
        def aborter():
            yield Advance(1.0)
            eng.request_abort(1.0, 0)
            yield Block("aborting")

        eng = Engine()
        eng.spawn(aborter())
        result = eng.run()
        assert len(result.log.category("abort")) == 1


class TestExitPolicy:
    def test_exit_policy_failure_converts_done_to_failed(self):
        eng = Engine()
        vp = eng.spawn(sleeper(1.0))
        eng.exit_policy = lambda vp: "failure"
        result = eng.run()
        assert vp.state is VpState.FAILED
        assert result.failures == [(0, 1.0)]
        assert "MPI_Finalize" in str(result.log.category("failure")[0].message)

    def test_exit_policy_done_keeps_done(self):
        eng = Engine()
        vp = eng.spawn(sleeper(1.0))
        eng.exit_policy = lambda vp: "done"
        result = eng.run()
        assert vp.state is VpState.DONE
        assert result.completed


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        def build():
            eng = Engine()
            for d in (3.0, 1.0, 2.0):
                eng.spawn(sleeper(d))
            eng.schedule_failure(1, 0.5)
            return eng.run()

        r1, r2 = build(), build()
        assert r1.end_times == r2.end_times
        assert r1.failures == r2.failures
        assert r1.event_count == r2.event_count
