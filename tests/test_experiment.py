"""Experiment drivers (Table II machinery, First Impressions) and reports."""

import pytest

from repro.apps.heat3d import HeatConfig
from repro.core.harness.config import SystemConfig
from repro.core.harness.experiment import (
    PAPER_TABLE2,
    Table2Cell,
    Table2Config,
    classify_detection_phase,
    measure_e1,
    observe_failure_mode,
    run_table2_row,
)
from repro.core.harness.report import format_table, render_table2

# A tiny, fast Table II configuration for tests (full runs are benchmarks).
TINY = Table2Config(nranks=27, iterations=100, intervals=(50, 25), mttfs=(600.0,))


class TestPaperReference:
    def test_paper_table_complete(self):
        assert len(PAPER_TABLE2) == 7
        assert PAPER_TABLE2[(None, 1000)][0] == 5248.0

    def test_paper_mttfa_relation_holds(self):
        """The paper's own rows satisfy MTTF_a ~ E2 / (F + 1)."""
        for (mttf, _), (_, e2, f, mttf_a) in PAPER_TABLE2.items():
            if e2 is None:
                continue
            assert mttf_a == pytest.approx(e2 / (f + 1), abs=1.0)


class TestRunRows:
    def test_measure_e1_completes(self):
        system = TINY.system()
        wl = TINY.workload(50)
        e1 = measure_e1(system, wl)
        # 100 iterations x 4096 points x 1.28 us x 1000 ~ 524 s + phases
        assert e1 == pytest.approx(524.3, rel=0.05)

    def test_baseline_row(self):
        cell, run = run_table2_row(TINY, 100, None)
        assert run is None
        assert cell.e2 is None
        assert cell.f == 0

    def test_failure_row_invariants(self):
        cell, run = run_table2_row(TINY, 25, 600.0)
        assert run is not None
        assert run.completed
        assert cell.e2 >= cell.e1 or cell.f == 0
        if cell.f > 0:
            assert cell.mttf_a == pytest.approx(cell.e2 / (cell.f + 1))

    def test_rows_deterministic(self):
        c1, _ = run_table2_row(TINY, 25, 600.0)
        c2, _ = run_table2_row(TINY, 25, 600.0)
        assert c1 == c2

    def test_shorter_interval_smaller_e2_under_failures(self):
        """The paper's headline observation, at test scale: with failures
        present, a shorter checkpoint interval reduces E2."""
        cfg = Table2Config(nranks=27, iterations=100, seed=1)
        long_c, _ = run_table2_row(cfg, 100, 300.0)
        short_c, _ = run_table2_row(cfg, 20, 300.0)
        if long_c.f > 0 and short_c.f > 0:
            assert short_c.e2 < long_c.e2


class TestFailureModes:
    """Paper §V-D First Impressions."""

    def _workload(self):
        return HeatConfig.paper_workload(checkpoint_interval=25, nranks=27, iterations=100)

    def _system(self):
        return SystemConfig.paper_system(nranks=27)

    def test_compute_phase_failure_detected_in_halo_exchange(self):
        """"A failure during the computation phase is detected in the halo
        exchange due to failing communication.""" """"""
        # interval 25 x 5.24 s/iter: compute phase 1 spans ~0..131 s
        obs = observe_failure_mode(self._system(), self._workload(), rank=13, time=50.0)
        assert obs.aborted
        assert obs.detected_phase == "pt2pt"
        assert obs.activated is not None

    def test_checkpoint_phase_failure_detected_in_barrier(self):
        """"A failure during the checkpoint phase is detected in the
        following barrier.""" """"""
        from repro.models.filesystem import FileSystemModel

        system = self._system().scaled(
            filesystem=FileSystemModel.create("1GB/s", "1kB/s", "1ms")
        )
        wl = self._workload()
        # first checkpoint at iteration 25 -> t ~ 131 s; the ~33 kB write at
        # 1 kB/s takes ~33 s per rank, so t=140 lands inside the write
        obs = observe_failure_mode(system, wl, rank=13, time=140.0)
        assert obs.aborted
        assert obs.detected_phase == "collective"
        assert obs.corrupted_checkpoint  # the victim's file stayed PARTIAL

    def test_abort_leaves_checkpoint_damage(self):
        """"...always resulting in an incomplete or corrupted checkpoint,
        or ... partially deleted old checkpoints." — provoked by a failure
        landing in the checkpoint write window (slow file system).  A
        compute-phase failure no longer qualifies: posts made after the
        failure notification fail immediately, so the job aborts before
        any checkpoint I/O begins and the store stays untouched."""
        from repro.models.filesystem import FileSystemModel

        system = self._system().scaled(
            filesystem=FileSystemModel.create("1GB/s", "1kB/s", "1ms")
        )
        obs = observe_failure_mode(system, self._workload(), rank=5, time=150.0)
        assert obs.aborted
        assert (
            obs.corrupted_checkpoint
            or obs.incomplete_checkpoint
            or obs.partially_deleted_old
        )

    def test_no_failure_no_damage(self):
        obs = observe_failure_mode(
            self._system(), self._workload(), rank=5, time=10_000_000.0
        )
        assert not obs.aborted
        assert obs.activated is None
        assert obs.detected_phase is None


class TestReports:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_render_table2_with_paper_columns(self):
        cells = [Table2Cell(None, 1000, 5244.0, None, 0, None)]
        out = render_table2(cells)
        assert "paper E1" in out
        assert "5,248 s" in out  # the paper's value shown alongside
        assert "5,244 s" in out

    def test_render_table2_without_comparison(self):
        cells = [Table2Cell(6000.0, 500, 5251.0, 7882.0, 1, 3941.0)]
        out = render_table2(cells, compare_paper=False)
        assert "paper" not in out
