"""Adaptive fault-space exploration: spec resolution, CI machinery,
deterministic sampling, stopping, and the scorecard."""

import json
import math

import pytest

from repro.explore import (
    ExploreSpec,
    Explorer,
    build_strata,
    load_explore_file,
    read_explore_environment,
    run_explore,
    scorecard,
    scorecard_json,
    wilson_halfwidth,
    wilson_interval,
    z_score,
)
from repro.explore.sampler import required_n
from repro.run.scenario import Scenario
from repro.util.errors import ConfigurationError

BASE = Scenario(ranks=8, app="heat3d", iterations=10)

#: Small but non-degenerate campaign: every kind, 2x2 strata per kind.
SMALL = ExploreSpec(
    scenario=BASE,
    rank_bins=2,
    time_bins=2,
    min_samples=2,
    batch=6,
    max_cells=40,
    ci_width=0.25,
    seed=11,
)


# ----------------------------------------------------------------------
# CI machinery
# ----------------------------------------------------------------------
class TestIntervals:
    def test_z_score_matches_normal_table(self):
        assert z_score(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_score(0.99) == pytest.approx(2.575829, abs=1e-5)

    def test_wilson_empty_is_maximally_uncertain(self):
        assert wilson_interval(0, 0, 1.96) == (0.0, 1.0)
        assert wilson_halfwidth(0, 0, 1.96) == 0.5

    def test_wilson_bounds_and_narrowing(self):
        z = z_score(0.95)
        prev = 0.5
        for n in (2, 5, 10, 50, 200):
            lo, hi = wilson_interval(n // 2, n, z)
            assert 0.0 <= lo <= hi <= 1.0
            hw = wilson_halfwidth(n // 2, n, z)
            assert hw < prev
            prev = hw

    def test_wilson_extreme_proportions_stay_in_bounds(self):
        z = z_score(0.95)
        lo, hi = wilson_interval(0, 10, z)
        assert lo == 0.0 and 0.0 < hi < 0.5
        lo, hi = wilson_interval(10, 10, z)
        assert 0.5 < lo < 1.0 and hi == 1.0

    def test_required_n_is_consistent_with_halfwidth(self):
        z = z_score(0.95)
        for p in (0.0, 0.2, 0.5, 1.0):
            n = required_n(p, z, 0.15)
            assert wilson_halfwidth(int(round(p * n)), n, z) <= 0.15
            if n > 1:
                k = int(round(p * (n - 1)))
                assert wilson_halfwidth(k, n - 1, z) > 0.15


# ----------------------------------------------------------------------
# spec validation & resolution
# ----------------------------------------------------------------------
class TestSpec:
    def test_defaults_are_valid(self):
        spec = ExploreSpec()
        assert spec.kinds == ("failstop", "straggler", "link_degrade", "correlated")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown explore kind"):
            ExploreSpec(kinds=("bitflip",))

    def test_rejects_scenario_with_fault_axis_pinned(self):
        with pytest.raises(ConfigurationError, match="must not set failures"):
            ExploreSpec(scenario=Scenario(failures="3@5.0"))
        with pytest.raises(ConfigurationError, match="must not set mttf"):
            ExploreSpec(scenario=Scenario(mttf=1000.0))

    def test_rejects_no_restart_budget(self):
        with pytest.raises(ConfigurationError, match="max_restarts"):
            ExploreSpec(scenario=Scenario(max_restarts=0))

    def test_rejects_more_rank_bins_than_ranks(self):
        with pytest.raises(ConfigurationError, match="rank_bins"):
            ExploreSpec(scenario=Scenario(ranks=4), rank_bins=8)

    def test_rejects_bad_stopping_rule(self):
        with pytest.raises(ConfigurationError, match="ci_width"):
            ExploreSpec(ci_width=0.6)
        with pytest.raises(ConfigurationError, match="confidence"):
            ExploreSpec(confidence=1.5)

    def test_rejects_speedup_factors(self):
        with pytest.raises(ConfigurationError, match="straggler_factor"):
            ExploreSpec(straggler_factor=(0.5, 2.0))

    def test_describe_is_primitive_and_digest_stamped(self):
        d = ExploreSpec(scenario=BASE).describe()
        json.dumps(d)  # must serialize as-is
        assert d["scenario_digest"] == BASE.scenario_digest()
        assert d["kinds"] == list(ExploreSpec().kinds)

    def test_environment_layer(self):
        env = {"XSIM_EXPLORE_CI": "0.2", "XSIM_EXPLORE_BATCH": "8",
               "XSIM_EXPLORE_MAX_CELLS": "99"}
        assert read_explore_environment(env) == {
            "ci_width": 0.2, "batch": 8, "max_cells": 99,
        }
        with pytest.raises(ConfigurationError, match="XSIM_EXPLORE_BATCH"):
            read_explore_environment({"XSIM_EXPLORE_BATCH": "many"})

    def test_load_explore_file(self, tmp_path):
        path = tmp_path / "explore.toml"
        path.write_text(
            "[machine]\nranks = 8\n\n[app]\nname = \"heat3d\"\niterations = 10\n\n"
            "[explore]\nkinds = [\"failstop\", \"straggler\"]\nci_width = 0.2\n"
            "straggler_factor = [2.0, 3.0]\nradii = [0, 1]\n"
        )
        spec = load_explore_file(path, environ={}, use_environment=False)
        assert spec.scenario.ranks == 8
        assert spec.kinds == ("failstop", "straggler")
        assert spec.ci_width == 0.2
        assert spec.straggler_factor == (2.0, 3.0)
        assert spec.radii == (0, 1)

    def test_load_layers_env_and_flags_over_file(self, tmp_path):
        path = tmp_path / "explore.toml"
        path.write_text("[explore]\nci_width = 0.3\nbatch = 4\n")
        spec = load_explore_file(
            path, environ={"XSIM_EXPLORE_CI": "0.2"}, batch=12
        )
        assert spec.ci_width == 0.2  # env beats file
        assert spec.batch == 12  # flag beats file

    def test_load_rejects_sweep_table(self, tmp_path):
        path = tmp_path / "explore.toml"
        path.write_text("[sweep]\ninterval = [500, 250]\n\n[explore]\nbatch = 4\n")
        with pytest.raises(ConfigurationError, match="sweep"):
            load_explore_file(path, environ={}, use_environment=False)

    def test_load_rejects_unknown_key(self, tmp_path):
        path = tmp_path / "explore.toml"
        path.write_text("[explore]\nwidth = 0.2\n")
        with pytest.raises(ConfigurationError, match="unknown explore key"):
            load_explore_file(path, environ={}, use_environment=False)


# ----------------------------------------------------------------------
# strata & draws
# ----------------------------------------------------------------------
class TestStrata:
    def test_build_strata_shape(self):
        spec = ExploreSpec(
            scenario=BASE, rank_bins=2, time_bins=2, magnitude_bins=2, radii=(0, 1)
        )
        strata = build_strata(spec, time_hi=100.0)
        # failstop 2x2, correlated 2 radii x 2x2, straggler/link 2 mags x 2x2
        assert len(strata) == 4 + 8 + 8 + 8
        assert [s.index for s in strata] == list(range(len(strata)))
        for s in strata:
            assert 0 <= s.rank_lo < s.rank_hi <= 8
            assert 0.0 <= s.time_lo < s.time_hi <= 100.0

    def test_rank_bins_partition_the_job(self):
        spec = ExploreSpec(scenario=BASE, kinds=("failstop",), rank_bins=3,
                           time_bins=1)
        strata = build_strata(spec, time_hi=100.0)
        covered = sorted(
            r for s in strata for r in range(s.rank_lo, s.rank_hi)
        )
        assert covered == list(range(8))


# ----------------------------------------------------------------------
# the explorer end to end (real simulations, small budget)
# ----------------------------------------------------------------------
class TestExplorerEndToEnd:
    def test_deterministic_scorecard(self):
        r1 = run_explore(SMALL, cache=False)
        r2 = run_explore(SMALL, cache=False)
        assert scorecard_json(r1) == scorecard_json(r2)
        assert r1.spent > 0
        assert r1.stopped in ("ci-target", "max-cells")

    def test_jobs_do_not_change_the_scorecard(self):
        r1 = run_explore(SMALL, cache=False, jobs=1)
        r2 = run_explore(SMALL, cache=False, jobs=3)
        assert scorecard_json(r1) == scorecard_json(r2)

    def test_scorecard_has_no_execution_facts(self):
        result = run_explore(SMALL, cache=False)
        card = scorecard(result)
        text = scorecard_json(result)
        assert "cache" not in text and "saved_s" not in text
        assert card["baseline"]["e1"] > 0
        assert card["budget"]["cells"] == result.spent
        assert len(card["strata"]) == len(result.strata)
        assert {k["kind"] for k in card["kinds"]} == set(SMALL.kinds)

    def test_sampled_cells_respect_stratum_bounds(self):
        explorer = Explorer(SMALL, cache=False)
        result = explorer.run()
        # Every stratum the budget reached got at least min_samples.
        seeded = [s for s in result.strata if s.n > 0]
        assert seeded, "no stratum was sampled"
        assert result.spent == sum(s.n for s in result.strata)

    def test_failstop_and_correlated_report_restart_metrics(self):
        spec = SMALL.with_(kinds=("failstop", "correlated"), max_cells=16)
        card = scorecard(run_explore(spec, cache=False))
        for kind in card["kinds"]:
            assert kind["n"] > 0
            assert kind["impact_p"] == 1.0  # a killed rank always restarts
            assert kind["mttf_samples"] > 0
            assert kind["e2_delta_mean"] > 0.5  # restart re-runs the job


# ----------------------------------------------------------------------
# stopping behavior (synthetic cells: fast, exhaustive)
# ----------------------------------------------------------------------
def _fake_run_cells(scenarios, jobs=1, cache=None, key_prefix="cells"):
    """Deterministic synthetic campaign: the baseline completes at 100.0;
    a faulted cell's stretch is a pure hash of its failures string."""
    out = []
    for s in scenarios:
        if not s.failures:
            out.append({"completed": True, "exit_time": 100.0,
                        "result_digest": "base", "mode": "single"})
            continue
        h = hash(s.failures) % 1000 / 1000.0
        out.append({
            "completed": True,
            "exit_time": 100.0 * (1.0 + h),
            "e2": 100.0 * (1.0 + h),
            "result_digest": f"d{h}",
            "mode": "restart",
            "mttf_a": 50.0,
        })
    return out


class TestStoppingMonotone:
    @pytest.fixture(autouse=True)
    def synthetic_cells(self, monkeypatch):
        import repro.explore.sampler as sampler

        monkeypatch.setattr(sampler, "run_cells", _fake_run_cells)

    def _spec(self, ci_width):
        return ExploreSpec(
            scenario=BASE, rank_bins=2, time_bins=2, min_samples=2,
            batch=8, max_cells=400, ci_width=ci_width,
            impact_threshold=0.5, seed=3,
        )

    def test_cells_monotone_in_ci_target(self):
        spent = [run_explore(self._spec(w)).spent for w in (0.30, 0.20, 0.12)]
        assert spent[0] <= spent[1] <= spent[2]
        assert spent[0] < spent[2]  # the tight target really works harder

    def test_trajectory_prefix_identical_across_targets(self):
        # The allocation policy never reads the stopping target, so the
        # looser run's batch sequence is a prefix of the tighter run's.
        loose = run_explore(self._spec(0.30))
        tight = run_explore(self._spec(0.12))
        assert loose.batches == tight.batches[: len(loose.batches)]

    def test_max_cells_is_a_hard_cap(self):
        spec = self._spec(0.01).with_(max_cells=50)
        result = run_explore(spec)
        assert result.stopped == "max-cells"
        assert result.spent <= 50

    def test_grid_equivalent_counts_worst_stratum(self):
        result = run_explore(self._spec(0.30))
        z = result.z
        worst = max(
            required_n((s.impacted / s.n) if s.n else 0.5, z, 0.30)
            for s in result.strata
        )
        assert result.grid_cells == worst * len(result.strata)
        assert result.cells_ratio == result.spent / result.grid_cells
