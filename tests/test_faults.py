"""Fault injection machinery: schedules, reliability models, soft errors,
and the Finject campaign."""

import math

import numpy as np
import pytest

from repro.core.faults.finject import FinjectCampaign, VictimModel
from repro.core.faults.reliability import (
    ExponentialReliability,
    MttfInjectionPolicy,
    SystemReliability,
    WeibullReliability,
)
from repro.core.faults.schedule import ENV_VAR, FailureSchedule
from repro.core.faults.softerror import Effect, SoftErrorInjector
from repro.models.memory import MemoryTracker, RegionKind
from repro.pdes.engine import Engine
from repro.pdes.requests import Advance
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStreams


class TestFailureSchedule:
    def test_parse_rank_at_time(self):
        s = FailureSchedule.parse("3@100s,17@2500")
        assert [(e.rank, e.time) for e in s] == [(3, 100.0), (17, 2500.0)]

    def test_parse_with_units_and_spaces(self):
        s = FailureSchedule.parse(" 0@1ms , 1@2min ")
        assert [(e.rank, e.time) for e in s] == [(0, 0.001), (1, 120.0)]

    def test_parse_empty(self):
        assert len(FailureSchedule.parse("")) == 0
        assert not FailureSchedule.parse("  ")

    def test_parse_rejects_bad_entries(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule.parse("3-100")
        with pytest.raises(ConfigurationError):
            FailureSchedule.parse("x@100")
        with pytest.raises(ConfigurationError):
            FailureSchedule.parse("1@soon")

    def test_from_environment(self):
        s = FailureSchedule.from_environment({ENV_VAR: "2@5s"})
        assert [(e.rank, e.time) for e in s] == [(2, 5.0)]
        assert len(FailureSchedule.from_environment({})) == 0

    def test_of_and_render_roundtrip(self):
        s = FailureSchedule.of((1, 10.0), (2, 20.5))
        assert FailureSchedule.parse(s.render()).entries == s.entries

    def test_validate(self):
        s = FailureSchedule.of((5, 1.0))
        s.validate(6)
        with pytest.raises(ConfigurationError):
            s.validate(5)

    def test_shifted(self):
        s = FailureSchedule.of((0, 10.0)).shifted(100.0)
        assert s.entries[0].time == 110.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule.of((-1, 5.0))
        with pytest.raises(ConfigurationError):
            FailureSchedule.of((0, -5.0))

    def test_add_and_extend(self):
        s = FailureSchedule()
        s.add(1, 2.0)
        s.extend(FailureSchedule.of((3, 4.0)))
        assert len(s) == 2

    def test_duplicates_collapse_and_entries_sort(self):
        # Regression: parse/add/extend used to keep duplicates and input
        # order, so merging two schedules that shared an entry injected
        # the shared failure twice.
        s = FailureSchedule.parse("3@5,1@2,3@5")
        assert [(e.rank, e.time) for e in s] == [(1, 2.0), (3, 5.0)]
        s.add(3, 5.0)  # idempotent
        assert len(s) == 2
        s.extend(FailureSchedule.parse("1@2,0@9"))
        assert [(e.rank, e.time) for e in s] == [(1, 2.0), (3, 5.0), (0, 9.0)]

    def test_validate_rejects_rank_failing_twice(self):
        s = FailureSchedule.parse("3@5,3@9")
        with pytest.raises(ConfigurationError, match="rank 3 is scheduled to fail twice"):
            s.validate(8)


class TestDrawFirstFailureTieBreak:
    class _ConstantTtf:
        """Reliability stub: every component draws the same TTF."""

        def draw_ttf(self, rng):
            rng.random()  # consume, like a real draw
            return 42.0

    def test_tie_breaks_to_lowest_rank(self):
        system = SystemReliability(self._ConstantTtf(), 8)
        rng = np.random.default_rng(1234)
        idx, ttf = system.draw_first_failure(rng)
        assert idx == 0
        assert ttf == 42.0

    def test_seeded_draw_unchanged(self):
        # The explicit tie-break must not perturb the usual no-tie path:
        # the winner and TTF match a straight (ttf, index) minimum over
        # the same seeded stream.
        system = SystemReliability(ExponentialReliability(mttf=100.0), 16)
        rng = np.random.default_rng(77)
        idx, ttf = system.draw_first_failure(rng)
        rng2 = np.random.default_rng(77)
        draws = [system.component.draw_ttf(rng2) for _ in range(16)]
        expect = min(range(16), key=lambda i: (draws[i], i))
        assert (idx, ttf) == (expect, draws[expect])


class TestReliabilityModels:
    def test_exponential_fit_roundtrip(self):
        r = ExponentialReliability.from_fit(1000.0)
        assert r.fit == pytest.approx(1000.0)
        assert r.mttf == pytest.approx(1e9 * 3600 / 1000)

    def test_exponential_survival(self):
        r = ExponentialReliability(mttf=100.0)
        assert r.survival(0.0) == 1.0
        assert r.survival(100.0) == pytest.approx(math.exp(-1))
        assert r.hazard(50.0) == pytest.approx(0.01)

    def test_weibull_shape_one_is_exponential(self):
        w = WeibullReliability(scale=100.0, shape=1.0)
        assert w.mttf == pytest.approx(100.0)
        assert w.survival(100.0) == pytest.approx(math.exp(-1))

    def test_weibull_aging_hazard_increases(self):
        w = WeibullReliability(scale=100.0, shape=2.0)
        assert w.hazard(10.0) < w.hazard(50.0)

    def test_weibull_infant_mortality_hazard_decreases(self):
        w = WeibullReliability(scale=100.0, shape=0.5)
        assert w.hazard(10.0) > w.hazard(50.0)

    def test_system_mttf_scales_inversely(self):
        """The exascale scaling argument: n components, 1/n the MTTF."""
        sys = SystemReliability(ExponentialReliability(mttf=1e6), ncomponents=1000)
        assert sys.system_mttf == pytest.approx(1000.0)

    def test_system_first_failure_draw(self):
        sys = SystemReliability(ExponentialReliability(mttf=100.0), ncomponents=10)
        rng = RngStreams(0).get("t")
        idx, t = sys.draw_first_failure(rng)
        assert 0 <= idx < 10
        assert t > 0

    def test_weibull_system_mttf(self):
        sys = SystemReliability(WeibullReliability(scale=100.0, shape=1.0), ncomponents=4)
        assert sys.system_mttf == pytest.approx(25.0)

    def test_draws_ttf_deterministic(self):
        r = ExponentialReliability(mttf=10.0)
        assert r.draw_ttf(RngStreams(1).get("x")) == r.draw_ttf(RngStreams(1).get("x"))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialReliability(mttf=0.0)
        with pytest.raises(ConfigurationError):
            WeibullReliability(scale=1.0, shape=0.0)
        with pytest.raises(ConfigurationError):
            SystemReliability(ExponentialReliability(1.0), 0)
        with pytest.raises(ConfigurationError):
            ExponentialReliability.from_fit(0.0)


class TestMttfPolicy:
    def test_draw_ranges(self):
        """Paper: uniform rank, uniform time within 2 * MTTF_s."""
        policy = MttfInjectionPolicy(system_mttf=3000.0)
        rng = RngStreams(0).get("t")
        ranks, times = [], []
        for _ in range(500):
            r, t = policy.draw(rng, nranks=64)
            ranks.append(r)
            times.append(t)
        assert 0 <= min(ranks) and max(ranks) < 64
        assert 0 <= min(times) and max(times) < 6000.0
        # "evenly distributed": the mean of the draw is the system MTTF
        assert np.mean(times) == pytest.approx(3000.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MttfInjectionPolicy(0.0)
        with pytest.raises(ConfigurationError):
            MttfInjectionPolicy(10.0).draw(RngStreams(0).get("t"), 0)


class TestSoftErrorInjector:
    def _engine_with_sleeper(self, duration=10.0):
        eng = Engine()

        def gen():
            yield Advance(duration)

        eng.spawn(gen())
        return eng

    def _injector(self, eng, tracker):
        return SoftErrorInjector(engine=eng, memory=tracker, rng=RngStreams(0).get("se"))

    def test_critical_flip_crashes_process(self):
        eng = self._engine_with_sleeper()
        tracker = MemoryTracker()
        tracker.allocate(0, "text", 1000, RegionKind.CRITICAL)
        inj = self._injector(eng, tracker)
        inj.schedule_flip(0, 3.0)
        result = eng.run()
        assert result.failures == [(0, 10.0)]  # activates at the control point
        assert inj.outcomes[0].effect is Effect.CRASH
        assert result.log.category("soft-error")

    def test_data_flip_is_sdc_and_applies(self):
        eng = self._engine_with_sleeper()
        tracker = MemoryTracker()
        arr = np.zeros(100, dtype=np.uint8)
        tracker.allocate(0, "data", array=arr, kind=RegionKind.DATA)
        inj = self._injector(eng, tracker)
        inj.schedule_flip(0, 1.0)
        result = eng.run()
        assert result.completed
        assert inj.outcomes[0].effect is Effect.SDC
        assert arr.sum() > 0

    def test_unused_flip_benign(self):
        eng = self._engine_with_sleeper()
        tracker = MemoryTracker()
        tracker.allocate(0, "dead", 100, RegionKind.UNUSED)
        inj = self._injector(eng, tracker)
        inj.schedule_flip(0, 1.0)
        eng.run()
        assert inj.outcomes[0].effect is Effect.BENIGN

    def test_flip_into_dead_process_no_target(self):
        eng = self._engine_with_sleeper(duration=1.0)

        def straggler():
            yield Advance(10.0)  # keeps the simulation alive past the flip

        eng.spawn(straggler())
        tracker = MemoryTracker()
        tracker.allocate(0, "x", 10)
        inj = self._injector(eng, tracker)
        inj.schedule_flip(0, 5.0)  # rank 0 finished at t=1
        eng.run()
        assert inj.outcomes[0].effect is Effect.NO_TARGET

    def test_crash_disabled_counts_only(self):
        eng = self._engine_with_sleeper()
        tracker = MemoryTracker()
        tracker.allocate(0, "text", 100, RegionKind.CRITICAL)
        inj = SoftErrorInjector(
            engine=eng, memory=tracker, rng=RngStreams(0).get("se"), crash_on_critical=False
        )
        inj.schedule_flip(0, 1.0)
        result = eng.run()
        assert result.completed
        assert inj.outcomes[0].effect is Effect.CRASH

    def test_poisson_campaign_counts(self):
        eng = self._engine_with_sleeper(duration=100.0)
        tracker = MemoryTracker()
        tracker.allocate(0, "heap", 1000, RegionKind.DATA)
        inj = self._injector(eng, tracker)
        n = inj.schedule_poisson(rate_per_rank=0.1, horizon=100.0, ranks=[0])
        assert n > 0
        eng.run()
        assert len(inj.outcomes) == n
        assert inj.counts()[Effect.SDC] == n

    def test_flip_before_start_rejected(self):
        eng = Engine(start_time=10.0)
        inj = self._injector(eng, MemoryTracker())
        with pytest.raises(ConfigurationError):
            inj.schedule_flip(0, 5.0)


class TestVictimModel:
    def test_failure_probability(self):
        v = VictimModel()
        assert v.failure_probability == pytest.approx(
            v.critical_bytes / v.total_bytes
        )
        assert 0.02 < v.failure_probability < 0.08  # calibrated near 1/22

    def test_expected_injections(self):
        v = VictimModel()
        assert v.expected_injections_to_failure() == pytest.approx(1 / v.failure_probability)

    def test_build_registers_regions(self):
        tracker = MemoryTracker()
        VictimModel().build(tracker, 0)
        names = {r.name for r in tracker.regions(0)}
        assert names == {"registers", "text", "stack", "heap", "unused"}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VictimModel(heap_bytes=0)


class TestFinjectCampaign:
    def test_deterministic(self):
        r1 = FinjectCampaign(victims=20).run()
        r2 = FinjectCampaign(victims=20).run()
        assert r1.injections_to_failure == r2.injections_to_failure

    def test_default_campaign_matches_table1_shape(self):
        """Loose tolerances: the reproduction must land in the paper's
        statistical neighbourhood (mean 21.97, median 17, sigma 21.42)."""
        r = FinjectCampaign().run()
        s = r.stats
        assert s.count == 100
        assert s.total == sum(r.injections_to_failure)
        assert 15 <= s.mean <= 30
        assert 10 <= s.median <= 25
        assert s.minimum >= 1
        assert s.maximum <= 100
        assert 14 <= s.stddev <= 30
        assert s.median < s.mean  # geometric-like skew, as in the paper

    def test_table_rows_layout(self):
        r = FinjectCampaign(victims=10).run()
        rows = r.table_rows()
        assert rows[0][0] == "Victims"
        assert rows[0][1] == "10"
        assert rows[1][2] == "# of injected failures for all runs"

    def test_censoring_counted_at_cap(self):
        # a nearly failure-free victim forces censoring
        v = VictimModel(
            registers_bytes=1, text_bytes=1, stack_bytes=1, heap_bytes=10**7, unused_bytes=1
        )
        r = FinjectCampaign(victims=5, max_injections=10, victim=v).run()
        assert r.censored == 5
        assert set(r.injections_to_failure) == {10}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FinjectCampaign(victims=0).run()
