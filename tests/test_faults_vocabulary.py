"""The richer fault vocabulary: grammar, overlay semantics, and
serial <-> sharded digest parity for every kind."""

import math

import pytest

from repro.core.faults import (
    CorrelatedFailure,
    FaultOverlay,
    FailureSchedule,
    LinkDegradeFault,
    ScheduledFailure,
    StragglerFault,
    expand_correlated,
)
from repro.run.backends import run_scenario
from repro.run.scenario import Scenario
from repro.util.errors import ConfigurationError


# ----------------------------------------------------------------------
# grammar
# ----------------------------------------------------------------------
class TestGrammar:
    def test_all_kinds_roundtrip(self):
        text = "3@100.0,straggler:1@10.0+50.0*2.5,link:2-4@10.0+5.0*4.0,corr:5@200.0~2+1.0"
        sched = FailureSchedule.parse(text)
        assert FailureSchedule.parse(sched.render()).render() == sched.render()
        kinds = [type(e).__name__ for e in sched.entries]
        assert set(kinds) == {
            "ScheduledFailure", "StragglerFault", "LinkDegradeFault", "CorrelatedFailure",
        }

    def test_unit_suffixes_accepted_everywhere(self):
        sched = FailureSchedule.parse("straggler:0@1ms+2ms*2.0,link:1-2@500us*3.0")
        strag = next(e for e in sched.entries if isinstance(e, StragglerFault))
        link = next(e for e in sched.entries if isinstance(e, LinkDegradeFault))
        assert strag.time == pytest.approx(1e-3)
        assert strag.duration == pytest.approx(2e-3)
        assert link.time == pytest.approx(5e-4)
        assert math.isinf(link.duration)

    def test_infinite_window_renders_without_duration(self):
        text = StragglerFault(3, 5.0, 2.0).render()
        assert "+" not in text
        assert FailureSchedule.parse(text).entries[0].duration == math.inf

    def test_link_endpoints_canonicalized(self):
        a = LinkDegradeFault(4, 2, 10.0, 3.0)
        b = LinkDegradeFault(2, 4, 10.0, 3.0)
        assert (a.rank_a, a.rank_b) == (2, 4)
        assert a.render() == b.render()

    def test_factor_below_one_rejected(self):
        # Factors < 1 would speed ranks up, invalidating the sharded
        # engine's conservative lookahead (costs must stay >= undegraded).
        with pytest.raises(ConfigurationError):
            StragglerFault(0, 1.0, 0.5)
        with pytest.raises(ConfigurationError):
            FailureSchedule.parse("link:0-1@5.0*0.9")

    def test_validate_checks_every_kind_in_range(self):
        for text in ("straggler:9@1.0*2.0", "link:0-9@1.0*2.0", "corr:9@1.0~1"):
            with pytest.raises(ConfigurationError):
                FailureSchedule.parse(text).validate(nranks=8)
        FailureSchedule.parse(
            "straggler:7@1.0*2.0,link:0-7@1.0*2.0,corr:7@1.0~1"
        ).validate(nranks=8)

    def test_cross_kind_sort_is_deterministic(self):
        text = "link:0-1@5.0*2.0,straggler:2@5.0*2.0,corr:3@5.0~1,4@5.0"
        rendered = FailureSchedule.parse(text).render()
        # Same time: fail-stop, correlated, straggler, link (kind order).
        assert rendered == "4@5.0,corr:3@5.0~1,straggler:2@5.0*2.0,link:0-1@5.0*2.0"

    def test_digest_folds_new_kinds(self):
        base = Scenario(ranks=8, app="heat3d", iterations=10)
        digests = {
            base.with_(failures=f).scenario_digest()
            for f in ("", "straggler:3@5.0*2.0", "straggler:3@5.0*3.0",
                      "link:0-1@5.0*2.0", "corr:3@5.0~1")
        }
        assert len(digests) == 5


# ----------------------------------------------------------------------
# overlay
# ----------------------------------------------------------------------
class TestOverlay:
    def test_empty_overlay_is_identity(self):
        ov = FaultOverlay()
        assert not ov.active_compute and not ov.active_links
        assert ov.compute_factor(0, 1.0) == 1.0
        assert ov.link_factor(0, 1, 1.0) == 1.0

    def test_no_window_rank_returns_duration_unchanged(self):
        ov = FaultOverlay()
        ov.arm(StragglerFault(3, 5.0, 2.0, 10.0))
        # Bit-exact passthrough for unaffected ranks: the armed overlay
        # must not perturb their digests.
        for d in (0.1, 1.0 / 3.0, 7.25):
            assert ov.stretch_compute(0, 2.0, d) == d

    def test_stretch_fully_inside_window(self):
        ov = FaultOverlay()
        ov.arm(StragglerFault(0, 0.0, 2.0, 100.0))
        assert ov.stretch_compute(0, 10.0, 5.0) == pytest.approx(10.0)

    def test_stretch_window_opens_mid_compute(self):
        ov = FaultOverlay()
        ov.arm(StragglerFault(0, 10.0, 3.0))  # open-ended from t=10
        # 8s of work from t=6: 4s undegraded, then 4s of work at 3x = 12s.
        assert ov.stretch_compute(0, 6.0, 8.0) == pytest.approx(16.0)

    def test_stretch_window_closes_mid_compute(self):
        ov = FaultOverlay()
        ov.arm(StragglerFault(0, 0.0, 2.0, 10.0))
        # From t=0: the first 10 wall seconds do 5s of work (2x), the
        # remaining 3s run clean -> 13s wall for 8s of work.
        assert ov.stretch_compute(0, 0.0, 8.0) == pytest.approx(13.0)

    def test_overlapping_windows_compound(self):
        ov = FaultOverlay()
        ov.arm(StragglerFault(0, 0.0, 2.0, 100.0))
        ov.arm(StragglerFault(0, 0.0, 3.0, 100.0))
        assert ov.compute_factor(0, 1.0) == pytest.approx(6.0)
        assert ov.stretch_compute(0, 0.0, 4.0) == pytest.approx(24.0)

    def test_link_factor_is_undirected(self):
        ov = FaultOverlay()
        ov.arm(LinkDegradeFault(5, 2, 0.0, 4.0, 10.0))
        assert ov.link_factor(2, 5, 1.0) == 4.0
        assert ov.link_factor(5, 2, 1.0) == 4.0
        assert ov.link_factor(2, 5, 10.0) == 1.0  # window closed
        assert ov.link_factor(2, 4, 1.0) == 1.0  # other pair


# ----------------------------------------------------------------------
# correlated expansion
# ----------------------------------------------------------------------
class TestCorrelatedExpansion:
    def _network(self, ranks=16):
        return Scenario(ranks=ranks, topology="torus").system_config().make_network()

    def test_radius_zero_is_seed_only(self):
        net = self._network()
        fault = CorrelatedFailure(5, 100.0, 0)
        assert expand_correlated(fault, net, 16) == [(5, 100.0)]

    def test_radius_one_is_topology_neighborhood(self):
        net = self._network()
        fault = CorrelatedFailure(5, 100.0, 1, spread=1.0)
        expanded = dict(expand_correlated(fault, net, 16))
        assert expanded[5] == 100.0
        for rank, t in expanded.items():
            hops = net.hops(5, rank)
            assert hops <= 1
            assert t == 100.0 + hops * 1.0
        # Everything within the radius is present, nothing outside it.
        expected = {r for r in range(16) if net.hops(5, r) <= 1}
        assert set(expanded) == expected


# ----------------------------------------------------------------------
# end-to-end effect + serial <-> sharded parity
# ----------------------------------------------------------------------
def _outcome(failures, **kw):
    s = Scenario(ranks=8, app="heat3d", iterations=10, failures=failures, **kw)
    return run_scenario(s, cache=False).summary()


class TestEndToEnd:
    def test_straggler_stretches_completion(self):
        base = _outcome("")
        hit = _outcome("straggler:3@0.0*2.0")
        assert hit["completed"]
        assert hit["exit_time"] > base["exit_time"]

    def test_short_window_inside_one_compute_phase_still_felt(self):
        # heat3d batches iterations into coarse compute advances; a window
        # opening mid-phase must still stretch the overlapping portion.
        base = _outcome("")
        e1 = base["exit_time"]
        hit = _outcome(f"straggler:3@{e1 / 2!r}+5.0*4.0")
        assert 0.0 < hit["exit_time"] - e1 < 5.0 * 4.0

    def test_correlated_kills_neighborhood_and_restarts(self):
        base = _outcome("")
        hit = _outcome("corr:2@5.0~1")
        assert hit["completed"]
        assert hit["restarts"] >= 1
        assert hit["failures"] > 1  # the whole neighborhood died
        assert hit["exit_time"] > base["exit_time"]

    @pytest.mark.parametrize(
        "failures",
        [
            "straggler:3@5.0*2.0",
            "straggler:3@5.0+20.0*3.0",
            "link:0-1@5.0*8.0",
            "corr:2@5.0~1",
            "corr:2@5.0~1+0.5",
            "1@3.0,straggler:2@5.0+20.0*2.0,link:3-7@0.0*4.0",
        ],
    )
    def test_serial_sharded_digest_parity(self, failures):
        serial = _outcome(failures)
        sharded = _outcome(failures, shards=2, shard_transport="inline")
        assert serial["result_digest"] == sharded["result_digest"]
        assert serial["exit_time"] == sharded["exit_time"]
