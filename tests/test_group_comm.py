"""Groups, communicators, datatypes, and reduction ops."""

import numpy as np
import pytest

from repro.mpi.communicator import Communicator
from repro.mpi.datatypes import BYTE, DOUBLE, INT, payload_nbytes
from repro.mpi.errhandler import ERRORS_ARE_FATAL, ERRORS_RETURN
from repro.mpi.group import Group
from repro.mpi.ops import BAND, BOR, LAND, LOR, MAX, MIN, PROD, SUM, fold
from repro.util.errors import ConfigurationError


class TestGroup:
    def test_rank_translation(self):
        g = Group([10, 20, 30])
        assert g.size == 3
        assert g.world_rank(1) == 20
        assert g.group_rank(30) == 2
        assert g.group_rank(99) is None
        assert g.contains(10)

    def test_incl_excl(self):
        g = Group([10, 20, 30, 40])
        assert g.incl([2, 0]).ranks == (30, 10)
        assert g.excl([1, 3]).ranks == (10, 30)

    def test_set_operations(self):
        a, b = Group([1, 2, 3]), Group([3, 4])
        assert a.union(b).ranks == (1, 2, 3, 4)
        assert a.intersection(b).ranks == (3,)
        assert a.difference(b).ranks == (1, 2)

    def test_excl_world(self):
        g = Group([5, 6, 7, 8])
        assert g.excl_world([6, 8]).ranks == (5, 7)

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError):
            Group([1, 1])

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Group([-1])

    def test_out_of_range_group_rank(self):
        with pytest.raises(ConfigurationError):
            Group([1, 2]).world_rank(2)

    def test_equality_and_hash(self):
        assert Group([1, 2]) == Group([1, 2])
        assert Group([1, 2]) != Group([2, 1])  # order matters
        assert hash(Group([1, 2])) == hash(Group([1, 2]))

    def test_iteration(self):
        assert list(Group([3, 1])) == [3, 1]
        assert len(Group([3, 1])) == 2


class TestCommunicator:
    def test_rank_translation(self):
        c = Communicator(Group([10, 20]), context_id=5)
        assert c.size == 2
        assert c.rank_of(20) == 1
        assert c.world_rank(0) == 10
        with pytest.raises(ConfigurationError):
            c.rank_of(99)

    def test_default_errhandler_is_fatal(self):
        c = Communicator(Group([0, 1]), 1)
        assert c.get_errhandler(0) is ERRORS_ARE_FATAL

    def test_errhandler_is_per_rank(self):
        c = Communicator(Group([0, 1]), 1)
        c.set_errhandler(0, ERRORS_RETURN)
        assert c.get_errhandler(0) is ERRORS_RETURN
        assert c.get_errhandler(1) is ERRORS_ARE_FATAL

    def test_collective_seq_per_rank(self):
        c = Communicator(Group([0, 1]), 1)
        assert c.next_collective_seq(0) == 0
        assert c.next_collective_seq(0) == 1
        assert c.next_collective_seq(1) == 0  # independent counter

    def test_acked_failures(self):
        c = Communicator(Group([0, 1, 2]), 1)
        assert c.acked_failures(0) == frozenset()
        c.ack_failures(0, frozenset({2}))
        assert c.acked_failures(0) == frozenset({2})
        assert c.acked_failures(1) == frozenset()

    def test_default_name(self):
        assert Communicator(Group([0]), 7).name == "comm#7"


class TestDatatypes:
    def test_sizes(self):
        assert BYTE.size == 1
        assert INT.size == 4
        assert DOUBLE.size == 8

    def test_extent(self):
        assert DOUBLE.extent(100) == 800
        with pytest.raises(ConfigurationError):
            DOUBLE.extent(-1)

    def test_payload_nbytes_explicit_wins(self):
        assert payload_nbytes(np.zeros(10), 5) == 5

    def test_payload_nbytes_from_ndarray(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64), None) == 80

    def test_payload_nbytes_from_bytes(self):
        assert payload_nbytes(b"abcd", None) == 4
        assert payload_nbytes(bytearray(3), None) == 3

    def test_payload_nbytes_none_is_zero(self):
        assert payload_nbytes(None, None) == 0

    def test_payload_nbytes_opaque_requires_explicit(self):
        with pytest.raises(ConfigurationError):
            payload_nbytes({"a": 1}, None)
        with pytest.raises(ConfigurationError):
            payload_nbytes(None, -1)


class TestOps:
    def test_scalar_ops(self):
        assert SUM(2, 3) == 5
        assert PROD(2, 3) == 6
        assert MIN(2, 3) == 2
        assert MAX(2, 3) == 3
        assert LAND(1, 0) is False
        assert LOR(1, 0) is True
        assert BAND(0b110, 0b011) == 0b010
        assert BOR(0b110, 0b011) == 0b111

    def test_array_min_max(self):
        a, b = np.array([1, 5]), np.array([3, 2])
        assert list(MIN(a, b)) == [1, 2]
        assert list(MAX(a, b)) == [3, 5]

    def test_fold_order(self):
        assert fold(SUM, [1, 2, 3]) == 6
        assert fold(MAX, [3, 1, 2]) == 3

    def test_fold_single(self):
        assert fold(SUM, [5]) == 5

    def test_fold_modeled_payloads_short_circuit(self):
        assert fold(SUM, [1, None, 3]) is None
        assert fold(SUM, [None]) is None
