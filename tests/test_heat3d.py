"""The heat3d target application: decomposition, timing, real-data
validation, and checkpoint/restart correctness."""

import numpy as np
import pytest

from repro.apps.heat3d import (
    HeatConfig,
    HeatRunStats,
    coords_rank,
    factor3,
    heat3d,
    heat3d_serial_reference,
    neighbor_ranks,
    rank_coords,
)
from repro.core.checkpoint.store import CheckpointStore
from repro.core.harness.config import SystemConfig
from repro.core.restart import RestartDriver
from repro.core.simulator import XSim
from repro.mpi.constants import PROC_NULL
from repro.util.errors import ConfigurationError
from tests.conftest import run_app


class TestFactor3:
    @pytest.mark.parametrize("n", [1, 2, 6, 7, 8, 27, 64, 100, 512, 4096, 32768])
    def test_product_exact(self, n):
        a, b, c = factor3(n)
        assert a * b * c == n

    def test_cube_factors_exactly(self):
        assert sorted(factor3(32768)) == [32, 32, 32]
        assert sorted(factor3(64)) == [4, 4, 4]

    def test_near_equal(self):
        a, b, c = factor3(512)
        assert max(a, b, c) <= 2 * min(a, b, c)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            factor3(0)


class TestDecomposition:
    def test_rank_coords_roundtrip(self):
        ranks = (3, 4, 5)
        for r in range(60):
            assert coords_rank(rank_coords(r, ranks), ranks) == r

    def test_interior_rank_has_six_neighbors(self):
        nb = neighbor_ranks(coords_rank((1, 1, 1), (3, 3, 3)), (3, 3, 3))
        assert PROC_NULL not in nb.values()
        assert len(set(nb.values())) == 6

    def test_corner_rank_has_three_null(self):
        nb = neighbor_ranks(0, (3, 3, 3))
        assert sum(1 for v in nb.values() if v == PROC_NULL) == 3

    def test_neighbors_are_symmetric(self):
        ranks = (2, 3, 2)
        for r in range(12):
            for (axis, step), peer in neighbor_ranks(r, ranks).items():
                if peer != PROC_NULL:
                    assert neighbor_ranks(peer, ranks)[(axis, -step)] == r

    def test_out_of_range_rank(self):
        with pytest.raises(ConfigurationError):
            rank_coords(100, (2, 2, 2))


class TestHeatConfig:
    def test_paper_workload_full_scale(self):
        cfg = HeatConfig.paper_workload()
        assert cfg.grid == (512, 512, 512)
        assert cfg.ranks == (32, 32, 32)
        assert cfg.nranks == 32768
        assert cfg.points_per_rank == 4096
        assert cfg.iterations == 1000

    def test_paper_workload_scaled_keeps_points_per_rank(self):
        cfg = HeatConfig.paper_workload(nranks=64)
        assert cfg.nranks == 64
        assert cfg.points_per_rank == 4096

    def test_exchange_defaults_to_checkpoint_interval(self):
        cfg = HeatConfig.paper_workload(checkpoint_interval=250)
        assert cfg.effective_exchange_interval == 250

    def test_face_and_checkpoint_sizes(self):
        cfg = HeatConfig.paper_workload()
        assert cfg.local_shape == (16, 16, 16)
        assert cfg.face_bytes(0) == 16 * 16 * 8
        assert cfg.checkpoint_nbytes == 256 + 4096 * 8

    def test_indivisible_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            HeatConfig(grid=(10, 10, 10), ranks=(3, 2, 2))

    def test_bad_data_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            HeatConfig(grid=(8, 8, 8), ranks=(2, 2, 2), data_mode="magic")

    def test_validate_for(self):
        cfg = HeatConfig.paper_workload(nranks=8)
        cfg.validate_for(8)
        with pytest.raises(ConfigurationError):
            cfg.validate_for(16)


class TestModeledRun:
    def test_e1_matches_calibration(self):
        """1000 iterations x 4,096 points x calibrated cost ~ 5,243 s of
        pure compute; the single end-of-run phase adds little at 8 ranks."""
        cfg = HeatConfig.paper_workload(nranks=8)
        system = SystemConfig.paper_system(nranks=8)
        sim = XSim(system)
        res = sim.run(heat3d, args=(cfg, CheckpointStore()))
        assert res.completed
        assert res.exit_time == pytest.approx(5243.0, rel=0.01)

    def test_shorter_interval_costs_more_without_failures(self):
        def e1(interval):
            cfg = HeatConfig.paper_workload(checkpoint_interval=interval, nranks=8)
            sim = XSim(SystemConfig.paper_system(nranks=8))
            return sim.run(heat3d, args=(cfg, CheckpointStore())).exit_time

        assert e1(1000) < e1(250) < e1(125)

    def test_checkpoints_written_at_intervals(self):
        cfg = HeatConfig.paper_workload(checkpoint_interval=250, nranks=8, iterations=1000)
        store = CheckpointStore()
        sim = XSim(SystemConfig.paper_system(nranks=8))
        res = sim.run(heat3d, args=(cfg, store))
        assert res.completed
        # previous checkpoints deleted after the barrier; the last remains
        assert store.checkpoint_ids() == [1000]
        assert store.is_valid(1000, 8)
        assert store.writes == 8 * 4  # 4 checkpoints per rank

    def test_run_without_store(self):
        cfg = HeatConfig.paper_workload(nranks=8, iterations=10, checkpoint_interval=5)
        run = run_app(heat3d, nranks=8, args=(cfg, None))
        assert run.result.completed
        stats = run.result.exit_values[0]
        assert isinstance(stats, HeatRunStats)
        assert stats.iterations == 10
        assert stats.checksum is None

    def test_memory_tracked_for_soft_errors(self):
        cfg = HeatConfig.paper_workload(nranks=8, iterations=2, checkpoint_interval=2)
        run = run_app(heat3d, nranks=8, args=(cfg, None))
        assert run.sim.memory.footprint(0) == 4096 * 8


class TestRealDataMode:
    def _small_cfg(self, **kw):
        defaults = dict(
            grid=(8, 8, 8),
            ranks=(2, 2, 2),
            iterations=6,
            checkpoint_interval=3,
            exchange_interval=1,
            data_mode="real",
        )
        defaults.update(kw)
        return HeatConfig(**defaults)

    def _global_solution(self, run, cfg):
        """Stitch the per-rank checkpointed grids into the global field."""
        stats = run.result.exit_values
        assert all(isinstance(s, HeatRunStats) for s in stats.values())
        return {r: s.checksum for r, s in stats.items()}

    def test_matches_serial_reference(self):
        cfg = self._small_cfg()
        run = run_app(heat3d, nranks=8, args=(cfg, None))
        assert run.result.completed
        reference = heat3d_serial_reference(cfg)
        total = sum(s.checksum for s in run.result.exit_values.values())
        assert total == pytest.approx(float(reference.sum()), rel=1e-12)

    def test_checksums_deterministic(self):
        cfg = self._small_cfg()
        c1 = run_app(heat3d, nranks=8, args=(cfg, None)).result.exit_values[3].checksum
        c2 = run_app(heat3d, nranks=8, args=(cfg, None)).result.exit_values[3].checksum
        assert c1 == c2

    def test_restart_preserves_numerics(self):
        """A failure/restart cycle must reproduce the failure-free result
        exactly (checkpointed state is bitwise restored)."""
        # slow the virtual computation so a failure can land after the
        # first checkpoint (iteration 3) but before completion
        cfg = self._small_cfg(native_seconds_per_point=1e-3)
        system = SystemConfig.small_test_system(nranks=8)

        clean = run_app(heat3d, nranks=8, args=(cfg, None), system=system)
        clean_sum = sum(s.checksum for s in clean.result.exit_values.values())

        from repro.core.faults.schedule import FailureSchedule

        driver = RestartDriver(
            system,
            heat3d,
            make_args=lambda store: (cfg, store),
            schedule=FailureSchedule.of((5, 0.25)),
            seed=0,
        )
        result = driver.run()
        assert result.completed
        assert result.restarts >= 1
        total = sum(s.checksum for s in result.exit_values.values())
        assert total == pytest.approx(clean_sum, rel=1e-12)
        restarted = [s for s in result.exit_values.values() if s.restarted_from > 0]
        assert restarted  # the rerun really started from a checkpoint

    def test_halo_faces_really_travel(self):
        """Zero out one rank's ghost updates -> different result, proving
        the faces matter (guard against silently skipped exchanges)."""
        cfg = self._small_cfg(iterations=3, checkpoint_interval=3)
        run = run_app(heat3d, nranks=8, args=(cfg, None))
        serial = heat3d_serial_reference(cfg, iterations=3)
        total = sum(s.checksum for s in run.result.exit_values.values())
        assert total == pytest.approx(float(serial.sum()), rel=1e-12)
        # sanity: the field actually changed from its initial condition
        initial = heat3d_serial_reference(cfg, iterations=0)
        assert abs(float(initial.sum()) - total) > 1e-9
