"""heat3d with decoupled exchange/checkpoint intervals."""

import pytest

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.checkpoint.store import CheckpointStore
from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim
from tests.conftest import run_app


def traced_run(cfg, nranks=8):
    sim = XSim(SystemConfig.small_test_system(nranks=nranks), record_trace=True)
    store = CheckpointStore()
    result = sim.run(heat3d, args=(cfg, store))
    assert result.completed
    halos = [m for m in sim.world.trace.messages(ctx=2) if 1 <= m.tag <= 6]
    return halos, store, result


class TestDecoupledIntervals:
    def test_more_exchanges_than_checkpoints(self):
        cfg = HeatConfig.paper_workload(
            nranks=8, iterations=100, checkpoint_interval=50, exchange_interval=10
        )
        assert cfg.effective_exchange_interval == 10
        halos, store, _ = traced_run(cfg)
        # startup + one per 10 iterations = 11 exchange rounds
        # interior ranks of a 2x2x2 cube have 3 real neighbours
        per_round = 8 * 3  # messages per exchange round
        assert len(halos) == 11 * per_round
        # but only 2 checkpoints were written (at 50 and 100)
        assert store.writes == 8 * 2

    def test_paper_mode_equal_intervals(self):
        cfg = HeatConfig.paper_workload(nranks=8, iterations=100, checkpoint_interval=25)
        halos, store, _ = traced_run(cfg)
        per_round = 8 * 3
        assert len(halos) == 5 * per_round  # startup + 4 phases
        assert store.writes == 8 * 4

    def test_coarser_exchange_than_checkpoint(self):
        cfg = HeatConfig.paper_workload(
            nranks=8, iterations=100, checkpoint_interval=20, exchange_interval=50
        )
        halos, store, _ = traced_run(cfg)
        per_round = 8 * 3
        # exchanges at startup, 50, 100
        assert len(halos) == 3 * per_round
        assert store.writes == 8 * 5

    def test_real_mode_with_frequent_exchange_still_correct(self):
        from repro.apps.heat3d import heat3d_serial_reference

        cfg = HeatConfig(
            grid=(8, 8, 8),
            ranks=(2, 2, 2),
            iterations=5,
            checkpoint_interval=5,
            exchange_interval=1,
            data_mode="real",
        )
        run = run_app(heat3d, nranks=8, args=(cfg, None))
        total = sum(s.checksum for s in run.result.exit_values.values())
        serial = float(heat3d_serial_reference(cfg).sum())
        assert total == pytest.approx(serial, rel=1e-12)

    def test_e1_scales_with_exchange_frequency(self):
        def e1(exchange):
            cfg = HeatConfig.paper_workload(
                nranks=8, iterations=100, checkpoint_interval=100,
                exchange_interval=exchange,
            )
            system = SystemConfig.paper_system(nranks=8)
            sim = XSim(system)
            return sim.run(heat3d, args=(cfg, CheckpointStore())).exit_time

        assert e1(10) > e1(50) > e1(100) - 1e-9
