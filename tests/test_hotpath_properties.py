"""Property-based tests for the engine's hot-path optimizations.

The event loop carries two optimizations that must be *observationally
invisible*: stale-event skipping (dead-VP events lazily deleted at
dispatch) and advance coalescing (an Advance resume taken inline when no
other event can fire strictly before it).  Both claim exact preservation
of the simulation semantics — same exit time, same event count, same
failure activation times, same per-VP end states — on *every* schedule,
not just the ones the MPI layer happens to produce.  Hypothesis generates
random multi-VP advance programs and failure injections and compares a
coalescing engine against a non-coalescing one event for event.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.trace import EventTrace
from repro.pdes.engine import Engine
from repro.pdes.flatcore import FlatEngine
from repro.pdes.requests import Advance

# One VP program: a sequence of (dt, busy) advances.  dt=0 is a legal
# zero-cost control point; equal dts across VPs exercise the strict-'>'
# tie-breaking in the coalescing condition.
advance_strategy = st.tuples(
    st.one_of(
        st.just(0.0),
        st.sampled_from([0.5, 1.0, 1.0, 2.0]),  # repeats force time ties
        st.floats(min_value=0.0, max_value=3.0, allow_nan=False, allow_infinity=False),
    ),
    st.booleans(),
)
program_strategy = st.lists(advance_strategy, min_size=1, max_size=8)
programs_strategy = st.lists(program_strategy, min_size=1, max_size=5)


def _vp_main(program):
    for dt, busy in program:
        yield Advance(dt, busy=busy)


def _run(programs, failures, coalesce):
    engine = Engine(coalesce_advances=coalesce)
    for program in programs:
        engine.spawn(_vp_main(program))
    for rank, time in failures:
        engine.schedule_failure(rank % len(programs), time)
    return engine, engine.run()


@given(
    programs=programs_strategy,
    failures=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False),
        ),
        max_size=3,
    ),
)
@settings(max_examples=120, deadline=None)
def test_coalescing_preserves_simulation_semantics(programs, failures):
    base_engine, base = _run(programs, failures, coalesce=False)
    fast_engine, fast = _run(programs, failures, coalesce=True)

    # The non-coalescing engine never takes the inline path.
    assert base_engine.coalesced_advances == 0

    # Exact observational equality — floats compare with ==, not approx:
    # both paths compute vp.clock + dt in the same order.
    assert fast.exit_time == base.exit_time
    assert fast.event_count == base.event_count
    assert fast.failures == base.failures  # activation (rank, time) pairs
    assert fast.end_times == base.end_times
    assert fast.busy_times == base.busy_times
    assert fast.states == base.states
    assert fast.aborted == base.aborted


@given(programs=programs_strategy)
@settings(max_examples=60, deadline=None)
def test_failure_free_exit_time_is_max_program_length(programs):
    # Without failures the optimizations must reduce to plain timing:
    # each VP ends at the sum of its dts, the run at the maximum.
    engine, result = _run(programs, failures=[], coalesce=True)
    clock = 0.0
    for rank, program in enumerate(programs):
        clock = 0.0
        for dt, _ in program:
            clock += dt
        assert result.end_times[rank] == clock
    assert result.exit_time == max(result.end_times.values())
    assert not result.failures
    # dt=0 advances are zero-cost control points, every other advance is
    # exactly one event; +1 start event per VP.
    expected_events = sum(
        1 + sum(1 for dt, _ in program if dt > 0.0) for program in programs
    )
    assert result.event_count == expected_events


@given(
    programs=programs_strategy,
    failures=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False),
        ),
        min_size=1,
        max_size=3,
    ),
)
@settings(max_examples=80, deadline=None)
def test_failures_activate_at_or_after_their_scheduled_time(programs, failures):
    engine, result = _run(programs, failures, coalesce=True)
    earliest = {}
    for rank, time in failures:
        rank %= len(programs)
        earliest[rank] = min(earliest.get(rank, float("inf")), time)
    for rank, activated_at in result.failures:
        # A failure fires at the next control point at-or-after its
        # scheduled time, never before it.
        assert activated_at >= earliest[rank]
        assert result.end_times[rank] == activated_at
    # A rank whose program ends before its earliest failure time finishes
    # cleanly; its queued failure event is stale-skipped, not executed.
    failed_ranks = {rank for rank, _ in result.failures}
    for rank in earliest:
        if rank not in failed_ranks:
            assert result.end_times[rank] <= earliest[rank]


# ----------------------------------------------------------------------
# heap core vs flat slab-pool core (repro.pdes.flatcore)
# ----------------------------------------------------------------------
def _run_core(engine_cls, programs, failures, coalesce, trace=False):
    engine = engine_cls(coalesce_advances=coalesce)
    if trace:
        engine.event_trace = EventTrace()
    for program in programs:
        engine.spawn(_vp_main(program))
    for rank, time in failures:
        engine.schedule_failure(rank % len(programs), time)
    return engine, engine.run()


@given(
    programs=programs_strategy,
    failures=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False),
        ),
        max_size=3,
    ),
    coalesce=st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_flat_core_preserves_simulation_semantics(programs, failures, coalesce):
    """The flat slab-pool core must be observationally identical to the
    heap core on every schedule: same SimulationResult fields, same
    per-event dispatch trace (time, seq, rank, kind), same hot-path
    counters — with and without advance coalescing, with failures."""
    heap_engine, heap = _run_core(Engine, programs, failures, coalesce, trace=True)
    flat_engine, flat = _run_core(FlatEngine, programs, failures, coalesce, trace=True)

    assert flat.exit_time == heap.exit_time
    assert flat.event_count == heap.event_count
    assert flat.failures == heap.failures
    assert flat.end_times == heap.end_times
    assert flat.busy_times == heap.busy_times
    assert flat.states == heap.states
    assert flat.aborted == heap.aborted
    assert flat_engine.stale_skipped == heap_engine.stale_skipped
    assert flat_engine.coalesced_advances == heap_engine.coalesced_advances
    assert flat_engine.event_trace.digest() == heap_engine.event_trace.digest()


@given(
    programs=programs_strategy,
    failures=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False),
        ),
        min_size=1,
        max_size=3,
    ),
)
@settings(max_examples=80, deadline=None)
def test_flat_core_abort_runs_match_heap_core(programs, failures):
    """Abort/failure paths (epoch bumps, stale skips, kill sweeps) agree
    between the cores on the uninstrumented fast path as well."""
    _, heap = _run_core(Engine, programs, failures, coalesce=True)
    _, flat = _run_core(FlatEngine, programs, failures, coalesce=True)
    assert flat.exit_time == heap.exit_time
    assert flat.event_count == heap.event_count
    assert flat.failures == heap.failures
    assert flat.states == heap.states
    assert flat.aborted == heap.aborted


@given(programs=programs_strategy)
@settings(max_examples=40, deadline=None)
def test_flat_core_pool_gauges_are_consistent(programs):
    """Slab-pool accounting invariants on arbitrary workloads: every
    allocation is a reuse or part of a slab grow, and the peak never
    exceeds the capacity implied by the grow count."""
    from repro.pdes import flatcore

    engine, result = _run_core(FlatEngine, programs, failures=[], coalesce=True)
    assert result.exit_time >= 0.0
    # Each slab grow serves exactly one allocation directly; every other
    # allocation pops the free list.
    assert engine.pool_allocs == engine.pool_reuses + engine.slab_grows
    assert engine.pool_peak <= engine.slab_grows * flatcore._SLAB
    assert engine.batch_max <= result.event_count + engine.stale_skipped
    # Steady state: every slot released, free list holds the whole pool.
    assert len(engine._free) == engine._pool_cap


def test_stale_events_are_skipped_not_executed():
    # Two failures armed for the same VP: the first kills it, the second's
    # queued event finds a bumped epoch and is lazily dropped at dispatch.
    # A long-lived second VP keeps the loop running past the stale event.
    engine = Engine(coalesce_advances=True)
    engine.spawn(_vp_main([(1.0, True)] * 10))
    engine.spawn(_vp_main([(1.0, True)] * 10))
    engine.schedule_failure(0, 2.5)
    engine.schedule_failure(0, 5.0)
    result = engine.run()
    assert result.failures == [(0, 3.0)]
    assert result.end_times[1] == 10.0
    assert engine.stale_skipped >= 1
