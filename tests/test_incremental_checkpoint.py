"""Incremental/differential checkpointing."""

import pytest

from repro.core.checkpoint.incremental import IncrementalCheckpointProtocol, IncrementalPlan
from repro.core.checkpoint.store import CheckpointStore
from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig
from repro.core.restart import RestartDriver
from repro.models.filesystem import FileSystemModel
from repro.util.errors import ConfigurationError
from tests.conftest import run_app

STATE = 1_000_000  # full checkpoint bytes


class TestIncrementalPlan:
    def test_full_every_kth(self):
        plan = IncrementalPlan(full_interval=3, dirty_fraction=0.2)
        assert [plan.is_full(i) for i in range(6)] == [True, False, False, True, False, False]

    def test_write_sizes(self):
        plan = IncrementalPlan(full_interval=4, dirty_fraction=0.25)
        assert plan.write_nbytes(0, STATE) == STATE
        assert plan.write_nbytes(1, STATE) == STATE // 4

    def test_chain_length_resets_at_full(self):
        plan = IncrementalPlan(full_interval=4)
        assert [plan.chain_length(i) for i in range(8)] == [1, 2, 3, 4, 1, 2, 3, 4]

    def test_restore_bytes_accumulate(self):
        plan = IncrementalPlan(full_interval=4, dirty_fraction=0.25)
        assert plan.restore_nbytes(0, STATE) == STATE
        assert plan.restore_nbytes(2, STATE) == STATE + 2 * (STATE // 4)

    def test_mean_write_smaller_than_full(self):
        plan = IncrementalPlan(full_interval=4, dirty_fraction=0.25)
        assert plan.mean_write_nbytes(STATE) < STATE
        baseline = IncrementalPlan(full_interval=1)
        assert baseline.mean_write_nbytes(STATE) == STATE

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IncrementalPlan(full_interval=0)
        with pytest.raises(ConfigurationError):
            IncrementalPlan(dirty_fraction=0.0)
        with pytest.raises(ConfigurationError):
            IncrementalPlan(dirty_fraction=1.5)


def checkpointed_app(segments: int, plan: IncrementalPlan, work_per_segment: float = 10.0):
    """A compute loop using the incremental protocol (one ckpt/segment)."""

    def app(mpi, store):
        yield from mpi.init()
        proto = IncrementalCheckpointProtocol(mpi, store, plan)
        cid, data = yield from proto.restore_latest()
        done = data["segment"] if data else 0
        while done < segments:
            yield from mpi.compute(work_per_segment)
            done += 1
            yield from proto.checkpoint(done, {"segment": done}, STATE)
        yield from mpi.finalize()
        return done

    return app


def slow_fs_system(nranks=4):
    # 1 MB full checkpoint at 1 MB/s effective -> visible, countable cost
    return SystemConfig.small_test_system(nranks=nranks).scaled(
        filesystem=FileSystemModel(
            aggregate_bandwidth=1e9, client_bandwidth=1e6, metadata_latency=0.0
        )
    )


class TestProtocolCleanRuns:
    def test_incremental_writes_cost_less(self):
        plan_inc = IncrementalPlan(full_interval=4, dirty_fraction=0.25)
        plan_full = IncrementalPlan(full_interval=1)
        app_inc = checkpointed_app(8, plan_inc)
        app_full = checkpointed_app(8, plan_full)
        t_inc = run_app(app_inc, nranks=4, args=(CheckpointStore(),), system=slow_fs_system()).result.exit_time
        t_full = run_app(app_full, nranks=4, args=(CheckpointStore(),), system=slow_fs_system()).result.exit_time
        # full: 8 x 1 s of I/O; incremental: 2 full + 6 quarter writes
        assert t_inc < t_full
        assert t_full - t_inc == pytest.approx(6 * 0.75, abs=0.5)

    def test_pruning_keeps_only_active_chain(self):
        store = CheckpointStore()
        plan = IncrementalPlan(full_interval=3, dirty_fraction=0.5)
        run = run_app(checkpointed_app(7, plan), nranks=4, args=(store,))
        assert run.result.completed
        # checkpoints 1..7; fulls at indices 0,3,6 -> ids 1,4,7.
        # after full #7, ids 4,5,6 were pruned; 7 remains
        assert store.checkpoint_ids() == [7]

    def test_chain_kept_between_fulls(self):
        store = CheckpointStore()
        plan = IncrementalPlan(full_interval=4, dirty_fraction=0.5)
        run = run_app(checkpointed_app(3, plan), nranks=4, args=(store,))
        assert run.result.completed
        # ids 1 (full), 2, 3 (incrementals): all must survive
        assert store.checkpoint_ids() == [1, 2, 3]


class TestRestartWithChains:
    def _run(self, plan, fail_at, segments=8):
        driver = RestartDriver(
            SystemConfig.small_test_system(nranks=4),
            checkpointed_app(segments, plan),
            make_args=lambda store: (store,),
            schedule=FailureSchedule.of((2, fail_at)),
        )
        return driver.run()

    def test_restart_from_incremental_chain(self):
        plan = IncrementalPlan(full_interval=4, dirty_fraction=0.25)
        run = self._run(plan, fail_at=65.0)  # mid segment 7; ckpt 6 done
        assert run.completed
        assert run.restarts == 1
        assert set(run.exit_values.values()) == {8}
        # the rerun resumed from checkpoint 6, not from the last full (5)
        final = run.segments[-1]
        assert final.result.exit_time - final.start_time == pytest.approx(
            2 * 10.0, abs=5.0
        )

    def test_corrupted_incremental_falls_back_along_chain(self):
        """A corrupted newest incremental forces restore from an earlier
        chain member."""
        store = CheckpointStore()
        plan = IncrementalPlan(full_interval=4, dirty_fraction=0.25)
        run = run_app(checkpointed_app(6, plan), nranks=4, args=(store,))
        assert run.result.completed
        # sabotage the newest checkpoint (id 6) for rank 0
        store.begin_write(6, 0, {"broken": True}, 10)  # PARTIAL overwrite

        def resume_app(mpi, st):
            yield from mpi.init()
            proto = IncrementalCheckpointProtocol(mpi, st, plan)
            cid, data = yield from proto.restore_latest()
            yield from mpi.finalize()
            return (cid, data["segment"] if data else None)

        run2 = run_app(resume_app, nranks=4, args=(store,))
        cid, seg = run2.result.exit_values[0]
        assert cid == 5
        assert seg == 5

    def test_full_only_plan_equivalent_to_classic(self):
        plan = IncrementalPlan(full_interval=1)
        run = self._run(plan, fail_at=45.0)
        assert run.completed
        assert set(run.exit_values.values()) == {8}
