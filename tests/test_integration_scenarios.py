"""End-to-end integration scenarios across the whole stack."""

import pytest

from repro.apps.heat3d import HeatConfig, heat3d
from repro.apps.naive_cr import NaiveCrConfig, naive_cr
from repro.core.faults.policies import ReliabilityInjectionPolicy
from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig
from repro.core.restart import RestartDriver
from repro.core.simulator import XSim


class TestHeatUnderComponentReliability:
    """Future-work 2 end to end: component-model-driven multi-failure runs
    of the paper's application, through detection, abort, and restart."""

    def test_completes_under_weibull_aging_components(self):
        nranks = 27
        system = SystemConfig.paper_system(nranks=nranks)
        workload = HeatConfig.paper_workload(checkpoint_interval=125, nranks=nranks)
        policy = ReliabilityInjectionPolicy.for_system_mttf(
            2000.0, nranks=nranks, shape=1.5
        )
        driver = RestartDriver(
            system,
            heat3d,
            make_args=lambda store: (workload, store),
            policy=policy,
            seed=11,
            draw_horizon=20_000.0,
            max_restarts=200,
        )
        run = driver.run()
        assert run.completed
        assert run.f >= 1
        # E2 accounts for all lost work: strictly beyond the compute floor
        compute_floor = 1000 * 4096 * workload.native_seconds_per_point * 1000.0
        assert run.e2 > compute_floor
        # every aborted segment left a consistent store for the next one
        assert run.store.latest_valid(nranks) == 1000

    def test_multiple_failures_in_one_segment_first_aborts(self):
        """Two failures drawn into the same segment: the first activation
        aborts the job; the second may never activate."""
        nranks = 8
        system = SystemConfig.small_test_system(nranks=nranks)
        cfg = NaiveCrConfig(work=100.0, tau=10.0, delta=0.5)
        schedule = FailureSchedule.of((2, 31.0), (5, 33.0))
        driver = RestartDriver(
            system, naive_cr, make_args=lambda store: (cfg, store), schedule=schedule
        )
        run = driver.run()
        assert run.completed
        first_seg = run.segments[0].result
        assert first_seg.aborted
        # rank 2 failed; whether rank 5 also activated depends on the
        # abort racing its compute - but rank 2 must be first
        assert first_seg.failures[0][0] == 2


class TestRestartClockContinuity:
    def test_e2_equals_last_exit_when_started_at_zero(self):
        nranks = 8
        system = SystemConfig.small_test_system(nranks=nranks)
        cfg = NaiveCrConfig(work=50.0, tau=5.0, delta=0.5)
        driver = RestartDriver(
            system,
            naive_cr,
            make_args=lambda store: (cfg, store),
            schedule=FailureSchedule.of((3, 22.0)),
        )
        run = driver.run()
        assert run.completed
        assert run.e2 == run.segments[-1].result.exit_time
        # each segment's engine really started at the previous exit time
        for prev, nxt in zip(run.segments, run.segments[1:]):
            assert nxt.result.start_time == prev.result.exit_time
            # and no VP clock ever ran backwards
            assert min(nxt.result.end_times.values()) >= prev.result.exit_time


class TestDeterministicEndToEnd:
    def test_identical_experiments_identical_virtual_history(self):
        nranks = 27
        system = SystemConfig.paper_system(nranks=nranks)
        workload = HeatConfig.paper_workload(checkpoint_interval=250, nranks=nranks)

        def go():
            driver = RestartDriver(
                system,
                heat3d,
                make_args=lambda store: (workload, store),
                mttf=2000.0,
                seed=4,
            )
            return driver.run()

        a, b = go(), go()
        assert a.e2 == b.e2
        assert a.f == b.f
        assert a.failures == b.failures
        assert [s.result.event_count for s in a.segments] == [
            s.result.event_count for s in b.segments
        ]


class TestFullStackTrace:
    def test_trace_of_heat_run_matches_decomposition(self):
        """Every traced halo message connects topological neighbours."""
        from repro.apps.heat3d import neighbor_ranks

        nranks = 27
        workload = HeatConfig.paper_workload(checkpoint_interval=500, nranks=nranks)
        sim = XSim(SystemConfig.paper_system(nranks=nranks), record_trace=True)
        result = sim.run(heat3d, args=(workload, None))
        assert result.completed
        halo = [m for m in sim.world.trace.messages(ctx=2) if 1 <= m.tag <= 6]
        assert halo
        for m in halo:
            assert m.dst in neighbor_ranks(m.src, workload.ranks).values()
            assert m.delivered
        # face sizes match the decomposition (16x16 points x 8 B)
        assert {m.nbytes for m in halo} == {16 * 16 * 8}
