"""Resilience cost/benefit metrics."""

import pytest

from repro.apps.naive_cr import NaiveCrConfig, naive_cr
from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig
from repro.core.harness.metrics import ResilienceMetrics, compute_metrics
from repro.core.restart import RestartDriver
from repro.util.errors import ConfigurationError

WORK, TAU, DELTA = 100.0, 10.0, 1.0  # E1 = 110 s, useful = 100 s


def run_experiment(schedule=None):
    system = SystemConfig.small_test_system(nranks=4)
    cfg = NaiveCrConfig(work=WORK, tau=TAU, delta=DELTA)
    driver = RestartDriver(
        system, naive_cr, make_args=lambda store: (cfg, store), schedule=schedule
    )
    return driver.run()


class TestComputeMetrics:
    def test_failure_free_run(self):
        run = run_experiment()
        m = compute_metrics(run, useful_time=WORK, e1=run.e2, nranks=4)
        assert m.efficiency == pytest.approx(WORK / 110.0, rel=0.01)
        assert m.checkpoint_overhead == pytest.approx(10.0, rel=0.05)
        assert m.failure_overhead == 0.0
        assert m.availability == 1.0
        assert m.mttf_application is None

    def test_run_with_failure(self):
        clean = run_experiment()
        faulty = run_experiment(schedule=FailureSchedule.of((2, 55.0)))
        m = compute_metrics(faulty, useful_time=WORK, e1=clean.e2, nranks=4)
        assert m.failures == 1
        assert m.restarts == 1
        assert m.failure_overhead > 0
        assert m.efficiency < WORK / clean.e2
        assert m.waste == pytest.approx(m.checkpoint_overhead + m.failure_overhead)
        # one node was dead from ~55 s to the segment's abort
        assert 0.0 < m.lost_node_seconds < m.node_seconds
        assert m.availability < 1.0
        assert m.mttf_application == pytest.approx(m.e2 / 2)

    def test_summary_renders(self):
        run = run_experiment(schedule=FailureSchedule.of((1, 33.0)))
        clean = run_experiment()
        m = compute_metrics(run, useful_time=WORK, e1=clean.e2, nranks=4)
        text = m.summary()
        assert "efficiency" in text
        assert "application MTTF" in text
        assert "availability" in text

    def test_validation(self):
        run = run_experiment()
        with pytest.raises(ConfigurationError):
            compute_metrics(run, useful_time=0.0, e1=110.0, nranks=4)
        with pytest.raises(ConfigurationError):
            compute_metrics(run, useful_time=200.0, e1=110.0, nranks=4)
        with pytest.raises(ConfigurationError):
            compute_metrics(run, useful_time=100.0, e1=110.0, nranks=0)


class TestMetricsAlgebra:
    def _metrics(self, **kw):
        base = dict(
            useful_time=100.0,
            e1=110.0,
            e2=150.0,
            failures=2,
            restarts=2,
            node_seconds=600.0,
            lost_node_seconds=60.0,
        )
        base.update(kw)
        return ResilienceMetrics(**base)

    def test_decomposition_adds_up(self):
        m = self._metrics()
        assert m.checkpoint_overhead + m.failure_overhead == pytest.approx(m.waste)
        assert m.useful_time + m.waste == pytest.approx(m.e2)

    def test_availability(self):
        assert self._metrics().availability == pytest.approx(0.9)
        assert self._metrics(node_seconds=0.0, lost_node_seconds=0.0).availability == 1.0

    def test_mttf_relation(self):
        assert self._metrics().mttf_application == pytest.approx(50.0)
        assert self._metrics(failures=0).mttf_application is None
