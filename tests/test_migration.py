"""Proactive migration: engine delay injection and the intercept policy."""

import pytest

from repro.apps.naive_cr import NaiveCrConfig, naive_cr
from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig
from repro.core.migration import FailurePredictor, ProactiveMigration
from repro.core.restart import RestartDriver
from repro.pdes.engine import Engine
from repro.pdes.requests import Advance, Block
from repro.util.errors import ConfigurationError


class TestEngineDelayInjection:
    def test_delay_applied_at_next_control_point(self):
        eng = Engine()

        def worker():
            yield Advance(10.0)
            yield Advance(10.0)

        vp = eng.spawn(worker())
        eng.inject_delay(0, 3.0, duration=5.0)
        result = eng.run()
        # delay lands mid first advance, applied when control returns at 10
        assert vp.clock == pytest.approx(25.0)
        assert result.completed
        assert result.log.category("delay")

    def test_delay_on_blocked_vp_applies_after_wake(self):
        eng = Engine()

        def waiter():
            yield Block("w")
            yield Advance(1.0)

        vp = eng.spawn(waiter())
        eng.inject_delay(0, 1.0, duration=4.0)
        eng.schedule(10.0, lambda: eng.wake(vp, 10.0))
        eng.run()
        assert vp.clock == pytest.approx(15.0)  # 10 wake + 4 delay + 1 work

    def test_delays_accumulate(self):
        eng = Engine()

        def worker():
            yield Advance(10.0)
            yield Advance(0.0)

        vp = eng.spawn(worker())
        eng.inject_delay(0, 1.0, 2.0)
        eng.inject_delay(0, 2.0, 3.0)
        eng.run()
        assert vp.clock == pytest.approx(15.0)

    def test_delay_on_dead_vp_ignored(self):
        eng = Engine()

        def worker():
            yield Advance(1.0)

        eng.spawn(worker())

        def straggler():
            yield Advance(20.0)

        eng.spawn(straggler())
        eng.inject_delay(0, 5.0, 100.0)  # rank 0 already finished
        result = eng.run()
        assert result.end_times[0] == pytest.approx(1.0)

    def test_validation(self):
        eng = Engine(start_time=10.0)
        eng.spawn(iter(()))
        with pytest.raises(ConfigurationError):
            eng.inject_delay(0, 5.0, 1.0)  # before start
        with pytest.raises(ConfigurationError):
            eng.inject_delay(0, 20.0, -1.0)

    def test_failure_beats_pending_delay(self):
        eng = Engine()

        def worker():
            yield Advance(10.0)
            yield Advance(10.0)

        vp = eng.spawn(worker())
        eng.inject_delay(0, 1.0, 5.0)
        eng.schedule_failure(0, 2.0)
        result = eng.run()
        # control point at t=10: the failure activates; the delay never runs
        assert result.failures == [(0, 10.0)]


class TestPredictor:
    def test_recall_bounds(self):
        with pytest.raises(ConfigurationError):
            FailurePredictor(recall=1.5)
        with pytest.raises(ConfigurationError):
            FailurePredictor(lead_time=-1.0)

    def test_perfect_recall_always_predicts(self):
        from repro.util.rng import RngStreams

        p = FailurePredictor(recall=1.0)
        rng = RngStreams(0).get("t")
        assert all(p.predicts(rng) for _ in range(50))

    def test_zero_recall_never_predicts(self):
        from repro.util.rng import RngStreams

        p = FailurePredictor(recall=0.0)
        rng = RngStreams(0).get("t")
        assert not any(p.predicts(rng) for _ in range(50))


class TestProactiveMigration:
    def _driver(self, manager, schedule):
        system = SystemConfig.small_test_system(nranks=4)
        cfg = NaiveCrConfig(work=100.0, tau=10.0, delta=1.0)
        return RestartDriver(
            system,
            naive_cr,
            make_args=lambda store: (cfg, store),
            schedule=None,
            mttf=None,
            policy=_FixedPolicy(schedule),
            interceptor=manager.intercept,
        )

    def test_perfect_prediction_avoids_failure(self):
        manager = ProactiveMigration(
            FailurePredictor(lead_time=10.0, recall=1.0),
            spares=2,
            state_bytes=10**9,
            migration_bandwidth=1e9,
            migration_latency=1.0,
        )
        run = self._driver(manager, [(2, 50.0)]).run()
        assert run.completed
        assert run.f == 0  # no failure activated
        assert run.restarts == 0
        assert manager.stats.migrations == 1
        assert manager.stats.avoided_failures == 1
        # the victim paid the stop-and-copy downtime (2 s) but nobody else
        assert run.e2 == pytest.approx(110.0 + 2.0, abs=1.0)

    def test_unpredicted_failure_still_kills(self):
        manager = ProactiveMigration(
            FailurePredictor(lead_time=10.0, recall=0.0), spares=2
        )
        run = self._driver(manager, [(2, 50.0)]).run()
        assert run.f == 1
        assert run.restarts == 1
        assert manager.stats.unpredicted == 1
        assert manager.stats.migrations == 0

    def test_out_of_spares_fails(self):
        manager = ProactiveMigration(
            FailurePredictor(lead_time=10.0, recall=1.0), spares=0
        )
        run = self._driver(manager, [(2, 50.0)]).run()
        assert run.f == 1
        assert manager.stats.out_of_spares == 1

    def test_warning_too_late_fails(self):
        manager = ProactiveMigration(
            FailurePredictor(lead_time=100.0, recall=1.0), spares=2
        )
        run = self._driver(manager, [(2, 50.0)]).run()  # warn time < 0
        assert run.f == 1
        assert manager.stats.too_late == 1

    def test_spare_pool_depletes_across_failures(self):
        manager = ProactiveMigration(FailurePredictor(lead_time=5.0, recall=1.0), spares=1)
        run = self._driver(manager, [(1, 30.0), (2, 60.0)]).run()
        assert manager.stats.migrations == 1
        assert manager.stats.out_of_spares == 1
        assert run.f == 1  # the second failure went through

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProactiveMigration(FailurePredictor(), spares=-1)
        with pytest.raises(ConfigurationError):
            ProactiveMigration(FailurePredictor(), migration_bandwidth=0.0)


class _FixedPolicy:
    """Injection policy replaying a fixed relative schedule once."""

    def __init__(self, pairs):
        self.pairs = list(pairs)
        self.done = False

    def draw_segment(self, rng, nranks, horizon):
        if self.done:
            return []
        self.done = True
        return list(self.pairs)
