"""Assorted small-surface coverage: constants, reprs, property checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint.incremental import IncrementalPlan
from repro.mpi.constants import ERR_PROC_FAILED, SUCCESS, error_name
from repro.mpi.errhandler import ERRORS_ARE_FATAL, ERRORS_RETURN, MpiError


class TestConstants:
    def test_error_names(self):
        assert error_name(SUCCESS) == "MPI_SUCCESS"
        assert error_name(ERR_PROC_FAILED) == "MPI_ERR_PROC_FAILED"
        assert error_name(9999) == "MPI_ERR_9999"


class TestErrhandlerObjects:
    def test_sentinels_render(self):
        assert repr(ERRORS_ARE_FATAL) == "MPI_ERRORS_ARE_FATAL"
        assert repr(ERRORS_RETURN) == "MPI_ERRORS_RETURN"

    def test_mpi_error_carries_context(self):
        err = MpiError(ERR_PROC_FAILED, "recv src=3", failed_rank=3)
        assert err.code == ERR_PROC_FAILED
        assert err.failed_rank == 3
        assert "MPI_ERR_PROC_FAILED" in str(err)
        assert "recv src=3" in str(err)


@given(
    full_interval=st.integers(min_value=1, max_value=16),
    dirty=st.floats(min_value=0.01, max_value=1.0),
    index=st.integers(min_value=0, max_value=64),
    nbytes=st.integers(min_value=1, max_value=10**9),
)
@settings(max_examples=200)
def test_incremental_plan_invariants(full_interval, dirty, index, nbytes):
    plan = IncrementalPlan(full_interval=full_interval, dirty_fraction=dirty)
    w = plan.write_nbytes(index, nbytes)
    assert 1 <= w <= nbytes
    # restores read at least one full dump and at most the whole chain
    r = plan.restore_nbytes(index, nbytes)
    assert r >= nbytes
    assert r <= nbytes * plan.chain_length(index)
    # chain length cycles within [1, full_interval]
    assert 1 <= plan.chain_length(index) <= full_interval
    if plan.is_full(index):
        assert w == nbytes
        assert plan.chain_length(index) == 1
    # the average write cost never exceeds the full dump
    assert plan.mean_write_nbytes(nbytes) <= nbytes + 1e-9


@given(st.integers(min_value=1, max_value=200))
@settings(max_examples=50)
def test_factor3_products(n):
    from repro.apps.heat3d import factor3

    a, b, c = factor3(n)
    assert a * b * c == n
    assert min(a, b, c) >= 1


class TestSoftErrorProperty:
    def test_xsim_soft_errors_cached(self):
        from repro.core.harness.config import SystemConfig
        from repro.core.simulator import XSim

        sim = XSim(SystemConfig.small_test_system(nranks=1))
        assert sim.soft_errors is sim.soft_errors
