"""Processor, file-system, power, and memory models."""

import numpy as np
import pytest

from repro.models.filesystem import FileSystemModel
from repro.models.memory import MemoryRegion, MemoryTracker, RegionKind
from repro.models.power import PowerModel
from repro.models.processor import ProcessorModel
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStreams


class TestProcessorModel:
    def test_paper_slowdown(self):
        p = ProcessorModel()  # 1.7 GHz, 1000x
        assert p.effective_hz == pytest.approx(1.7e6)

    def test_native_seconds_scaled(self):
        p = ProcessorModel(slowdown=1000.0)
        assert p.time_for_native_seconds(0.001) == pytest.approx(1.0)

    def test_cycles(self):
        p = ProcessorModel(reference_hz=1e9, slowdown=10.0)
        assert p.time_for_cycles(1e8) == pytest.approx(1.0)

    def test_heat3d_calibration_point(self):
        """4,096 points at the calibrated per-point cost = the paper's
        ~5.24 s per iteration."""
        p = ProcessorModel()
        assert p.time_for_ops(4096, 1.28e-6) == pytest.approx(5.2429, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProcessorModel(slowdown=0.0)
        with pytest.raises(ConfigurationError):
            ProcessorModel(reference_hz=-1.0)
        with pytest.raises(ConfigurationError):
            ProcessorModel().time_for_native_seconds(-1.0)


class TestFileSystemModel:
    def test_disabled_costs_nothing(self):
        fs = FileSystemModel.disabled()
        assert fs.write_time(10**9, 1000) == 0.0
        assert fs.read_time(10**9) == 0.0
        assert fs.delete_time() == 0.0

    def test_single_writer_client_limited(self):
        fs = FileSystemModel(aggregate_bandwidth=500e9, client_bandwidth=4e9, metadata_latency=0.0)
        assert fs.write_time(4e9, 1) == pytest.approx(1.0)

    def test_many_writers_share_aggregate(self):
        fs = FileSystemModel(aggregate_bandwidth=500e9, client_bandwidth=4e9, metadata_latency=0.0)
        # 1000 writers: 0.5 GB/s each < the 4 GB/s client cap
        assert fs.effective_bandwidth(1000) == pytest.approx(0.5e9)
        assert fs.write_time(0.5e9, 1000) == pytest.approx(1.0)

    def test_metadata_latency_added(self):
        fs = FileSystemModel(metadata_latency=0.01)
        assert fs.write_time(0) == pytest.approx(0.01)
        assert fs.delete_time() == pytest.approx(0.01)

    def test_create_parses_units(self):
        fs = FileSystemModel.create("500GB/s", "4GB/s", "1ms")
        assert fs.aggregate_bandwidth == 500e9
        assert fs.metadata_latency == pytest.approx(1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FileSystemModel(aggregate_bandwidth=0)
        with pytest.raises(ConfigurationError):
            FileSystemModel().write_time(-1)
        with pytest.raises(ConfigurationError):
            FileSystemModel().effective_bandwidth(0)


class TestPowerModel:
    def test_node_energy(self):
        p = PowerModel(idle_watts=50.0, busy_watts=150.0)
        assert p.node_energy(busy_seconds=10.0, idle_seconds=20.0) == pytest.approx(2500.0)

    def test_machine_energy(self):
        p = PowerModel(idle_watts=50.0, busy_watts=150.0)
        e = p.machine_energy(nnodes=2, wall_seconds=10.0, busy_seconds_per_node=10.0)
        assert e == pytest.approx(3000.0)

    def test_average_power(self):
        p = PowerModel(idle_watts=100.0, busy_watts=200.0)
        avg = p.average_power(nnodes=1, wall_seconds=10.0, busy_seconds_per_node=5.0)
        assert avg == pytest.approx(150.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerModel(idle_watts=100.0, busy_watts=50.0)
        with pytest.raises(ConfigurationError):
            PowerModel().machine_energy(1, 1.0, 2.0)
        with pytest.raises(ConfigurationError):
            PowerModel().average_power(1, 0.0, 0.0)


class TestMemoryTracker:
    def test_allocate_and_footprint(self):
        m = MemoryTracker()
        m.allocate(0, "a", 100)
        m.allocate(0, "b", 50)
        m.allocate(1, "c", 10)
        assert m.footprint(0) == 150
        assert m.footprint(1) == 10
        assert m.footprint(2) == 0

    def test_reallocate_replaces(self):
        m = MemoryTracker()
        m.allocate(0, "a", 100)
        m.allocate(0, "a", 10)
        assert m.footprint(0) == 10

    def test_free(self):
        m = MemoryTracker()
        m.allocate(0, "a", 100)
        m.free(0, "a")
        assert m.footprint(0) == 0
        with pytest.raises(ConfigurationError):
            m.free(0, "a")

    def test_free_all(self):
        m = MemoryTracker()
        m.allocate(3, "a", 1)
        m.allocate(3, "b", 2)
        m.free_all(3)
        assert m.footprint(3) == 0
        m.free_all(3)  # idempotent

    def test_array_backing_sets_nbytes(self):
        m = MemoryTracker()
        arr = np.zeros(16, dtype=np.float64)
        region = m.allocate(0, "grid", array=arr)
        assert region.nbytes == 128

    def test_non_contiguous_array_rejected(self):
        arr = np.zeros((4, 4))[:, ::2]
        with pytest.raises(ConfigurationError):
            MemoryRegion(name="x", nbytes=0, array=arr)

    def test_flip_applies_to_backed_array(self):
        m = MemoryTracker()
        arr = np.zeros(8, dtype=np.uint8)
        m.allocate(0, "buf", array=arr)
        rec = m.flip_random_bit(0, RngStreams(3).get("t"))
        assert rec.applied
        assert arr.sum() == 2**rec.bit
        assert rec.region == "buf"

    def test_flip_is_involution(self):
        m = MemoryTracker()
        arr = np.arange(32, dtype=np.uint8)
        original = arr.copy()
        m.allocate(0, "buf", array=arr)
        rng1 = RngStreams(5).get("t")
        rng2 = RngStreams(5).get("t")
        m.flip_random_bit(0, rng1)
        m.flip_random_bit(0, rng2)  # same draw -> same bit -> restored
        assert np.array_equal(arr, original)

    def test_flip_unbacked_records_only(self):
        m = MemoryTracker()
        m.allocate(0, "model-only", 1000, RegionKind.CRITICAL)
        rec = m.flip_random_bit(0, RngStreams(1).get("t"))
        assert not rec.applied
        assert rec.kind is RegionKind.CRITICAL
        assert 0 <= rec.byte_offset < 1000
        assert 0 <= rec.bit < 8

    def test_flip_weighted_by_region_size(self):
        m = MemoryTracker()
        m.allocate(0, "big", 10_000, RegionKind.DATA)
        m.allocate(0, "small", 10, RegionKind.CRITICAL)
        rng = RngStreams(7).get("t")
        hits = sum(m.flip_random_bit(0, rng).region == "big" for _ in range(200))
        assert hits > 190

    def test_flip_empty_rank_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryTracker().flip_random_bit(0, RngStreams(0).get("t"))

    def test_zero_size_region_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryTracker().allocate(0, "empty", 0)
