"""Collective operations: all three algorithm families."""

import numpy as np
import pytest

from repro.core.harness.config import SystemConfig
from repro.mpi import ops
from tests.conftest import run_app

ALGOS = ["linear", "tree", "analytic"]


def finishing(body):
    def app(mpi, *args):
        yield from mpi.init()
        result = yield from body(mpi, *args)
        yield from mpi.finalize()
        return result

    return app


def run_collective(body, nranks=5, algo="linear", **overrides):
    system = SystemConfig.small_test_system(nranks=nranks, collective_algorithm=algo, **overrides)
    return run_app(finishing(body), nranks=nranks, system=system)


class TestBarrier:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_barrier_synchronizes_clocks(self, algo):
        def body(mpi):
            yield from mpi.compute(float(mpi.rank))  # ranks desynchronize
            yield from mpi.barrier()
            return mpi.wtime()

        run = run_collective(body, nranks=4, algo=algo)
        times = run.result.exit_values
        # everyone leaves the barrier no earlier than the slowest entrant
        assert min(times.values()) >= 3.0

    @pytest.mark.parametrize("algo", ALGOS)
    def test_single_rank_barrier(self, algo):
        def body(mpi):
            yield from mpi.barrier()
            return True

        assert run_collective(body, nranks=1, algo=algo).result.completed


class TestBcast:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_root_value_everywhere(self, algo):
        def body(mpi):
            value = {"data": 42} if mpi.rank == 0 else None
            return (yield from mpi.bcast(value, nbytes=100, root=0))

        run = run_collective(body, nranks=6, algo=algo)
        assert all(v == {"data": 42} for v in run.result.exit_values.values())

    @pytest.mark.parametrize("algo", ["linear", "tree"])
    def test_nonzero_root(self, algo):
        def body(mpi):
            value = "payload" if mpi.rank == 3 else None
            return (yield from mpi.bcast(value, nbytes=10, root=3))

        run = run_collective(body, nranks=5, algo=algo)
        assert set(run.result.exit_values.values()) == {"payload"}


class TestReduce:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_sum_at_root(self, algo):
        def body(mpi):
            return (yield from mpi.reduce(mpi.rank + 1, nbytes=8, op=ops.SUM, root=0))

        run = run_collective(body, nranks=5, algo=algo)
        assert run.result.exit_values[0] == 15
        assert all(v is None for r, v in run.result.exit_values.items() if r != 0)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_max(self, algo):
        def body(mpi):
            return (yield from mpi.reduce(mpi.rank * 7 % 5, nbytes=8, op=ops.MAX, root=0))

        run = run_collective(body, nranks=5, algo=algo)
        assert run.result.exit_values[0] == 4

    def test_numpy_array_reduction(self):
        def body(mpi):
            return (yield from mpi.reduce(np.array([1.0, float(mpi.rank)]), op=ops.SUM, root=0))

        run = run_collective(body, nranks=3)
        assert list(run.result.exit_values[0]) == [3.0, 3.0]


class TestAllreduce:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_sum_everywhere(self, algo):
        def body(mpi):
            return (yield from mpi.allreduce(mpi.rank + 1, nbytes=8, op=ops.SUM))

        run = run_collective(body, nranks=4, algo=algo)
        assert set(run.result.exit_values.values()) == {10}

    @pytest.mark.parametrize("algo", ALGOS)
    def test_min(self, algo):
        def body(mpi):
            return (yield from mpi.allreduce(10 - mpi.rank, nbytes=8, op=ops.MIN))

        run = run_collective(body, nranks=4, algo=algo)
        assert set(run.result.exit_values.values()) == {7}


class TestGatherScatter:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_gather_rank_order(self, algo):
        def body(mpi):
            return (yield from mpi.gather(f"r{mpi.rank}", nbytes=4, root=0))

        run = run_collective(body, nranks=4, algo=algo)
        assert run.result.exit_values[0] == ["r0", "r1", "r2", "r3"]
        assert run.result.exit_values[2] is None

    @pytest.mark.parametrize("algo", ALGOS)
    def test_allgather(self, algo):
        def body(mpi):
            return (yield from mpi.allgather(mpi.rank * 2, nbytes=8))

        run = run_collective(body, nranks=3, algo=algo)
        assert all(v == [0, 2, 4] for v in run.result.exit_values.values())

    def test_scatter(self):
        def body(mpi):
            values = [f"for{r}" for r in range(mpi.size)] if mpi.rank == 0 else None
            return (yield from mpi.scatter(values, nbytes=8, root=0))

        run = run_collective(body, nranks=4)
        assert run.result.exit_values == {r: f"for{r}" for r in range(4)}

    def test_scatter_requires_one_value_per_rank(self):
        def body(mpi):
            values = ["only-one"] if mpi.rank == 0 else None
            return (yield from mpi.scatter(values, nbytes=8, root=0))

        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_collective(body, nranks=2)


class TestAlltoallScan:
    def test_alltoall(self):
        def body(mpi):
            values = [f"{mpi.rank}->{r}" for r in range(mpi.size)]
            return (yield from mpi.alltoall(values, nbytes=8))

        run = run_collective(body, nranks=3)
        for r, got in run.result.exit_values.items():
            assert got == [f"{src}->{r}" for src in range(3)]

    def test_inclusive_scan(self):
        def body(mpi):
            return (yield from mpi.scan(mpi.rank + 1, nbytes=8, op=ops.SUM))

        run = run_collective(body, nranks=4)
        assert run.result.exit_values == {0: 1, 1: 3, 2: 6, 3: 10}


class TestAlgorithmCosts:
    def _barrier_time(self, algo, nranks=16):
        def body(mpi):
            yield from mpi.barrier()
            return mpi.wtime()

        system = SystemConfig.small_test_system(
            nranks=nranks,
            collective_algorithm=algo,
            send_overhead_native=1e-4,
            recv_overhead_native=1e-4,
            slowdown=1.0,
        )
        run = run_app(finishing(body), nranks=nranks, system=system)
        return max(run.result.exit_values.values())

    def test_tree_beats_linear_with_overheads(self):
        """The ablation the paper's fixed linear-algorithm choice implies:
        binomial trees parallelize the root's per-message overhead."""
        assert self._barrier_time("tree") < self._barrier_time("linear")

    def test_analytic_approximates_linear(self):
        lin = self._barrier_time("linear")
        ana = self._barrier_time("analytic")
        assert ana == pytest.approx(lin, rel=0.5)


class TestCommManagement:
    def test_comm_split_groups_by_color(self):
        def body(mpi):
            color = mpi.rank % 2
            sub = yield from mpi.comm_split(color)
            total = yield from mpi.allreduce(mpi.rank, nbytes=8, op=ops.SUM, comm=sub)
            return (mpi.comm_rank(sub), mpi.comm_size(sub), total)

        run = run_collective(body, nranks=6)
        # evens: 0+2+4=6; odds: 1+3+5=9
        assert run.result.exit_values[0] == (0, 3, 6)
        assert run.result.exit_values[1] == (0, 3, 9)
        assert run.result.exit_values[4] == (2, 3, 6)

    def test_comm_split_key_orders_members(self):
        def body(mpi):
            sub = yield from mpi.comm_split(color=0, key=-mpi.rank)  # reversed
            return mpi.comm_rank(sub)

        run = run_collective(body, nranks=3)
        assert run.result.exit_values == {0: 2, 1: 1, 2: 0}

    def test_comm_split_undefined_color(self):
        def body(mpi):
            sub = yield from mpi.comm_split(None if mpi.rank == 0 else 1)
            return sub is None

        run = run_collective(body, nranks=3)
        assert run.result.exit_values[0] is True
        assert run.result.exit_values[1] is False

    def test_comm_dup_isolated_but_congruent(self):
        def body(mpi):
            dup = yield from mpi.comm_dup()
            return (mpi.comm_rank(dup), mpi.comm_size(dup))

        run = run_collective(body, nranks=3)
        assert run.result.exit_values[2] == (2, 3)

    def test_comm_free_blocks_use(self):
        from repro.util.errors import ConfigurationError

        def body(mpi):
            dup = yield from mpi.comm_dup()
            yield from mpi.comm_free(dup)
            try:
                yield from mpi.barrier(comm=dup)
            except ConfigurationError:
                return "rejected"
            return "allowed"

        run = run_collective(body, nranks=2)
        assert set(run.result.exit_values.values()) == {"rejected"}
