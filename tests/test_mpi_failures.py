"""Failure propagation/detection/notification through the MPI layer.

These test the paper's core contribution (§IV-B/C/D): what surviving ranks
observe when a simulated MPI process fails.
"""

import pytest

from repro.core.harness.config import SystemConfig
from repro.mpi.constants import ANY_SOURCE, ERR_PROC_FAILED
from repro.mpi.errhandler import ERRORS_RETURN, MpiError
from repro.pdes.context import VpState
from tests.conftest import run_app

TIMEOUT = 1.0  # small_test_system detection timeout


def finishing(body):
    def app(mpi, *args):
        yield from mpi.init()
        result = yield from body(mpi, *args)
        yield from mpi.finalize()
        return result

    return app


class TestDetectionAndAbort:
    def test_blocked_recv_released_after_timeout_then_abort(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.recv(1, tag=0)  # rank 1 dies at t=5
            else:
                yield from mpi.compute(100.0)

        run = run_app(app, nranks=2, failures=[(1, 5.0)])
        res = run.result
        assert res.aborted
        # rank 1 was mid-compute at the scheduled time, so the failure
        # activates when the simulator regains control at t=100
        assert res.failures == [(1, 100.0)]
        assert res.states[1] is VpState.FAILED
        assert res.abort_time == pytest.approx(100.0 + TIMEOUT)

    def test_detection_time_is_failure_plus_timeout(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.recv(1, tag=0)
            else:
                yield from mpi.compute(5.0)  # dies at 5.0 (scheduled 2.0)

        run = run_app(app, nranks=2, failures=[(1, 2.0)])
        res = run.result
        assert res.failures == [(1, 5.0)]
        assert res.abort_time == pytest.approx(5.0 + TIMEOUT)
        detect = res.log.category("detect")
        assert len(detect) == 1
        assert detect[0].time == pytest.approx(6.0)
        assert detect[0].rank == 0

    def test_all_ranks_notified_failed_list(self):
        """Each VP maintains its own list of failed processes and times."""
        seen = {}

        @finishing
        def app(mpi):
            # rank 3 dies at the end of a short compute; the others probe
            # later, after the simulator-internal notification broadcast
            yield from mpi.compute(2.0 if mpi.rank == 3 else 10.0)
            seen[mpi.rank] = dict(mpi.vp.failed_peers)
            yield from mpi.barrier()

        run = run_app(app, nranks=4, failures=[(3, 1.0)])
        assert run.result.aborted
        for r in (0, 1, 2):
            assert seen[r] == {3: pytest.approx(2.0)}

    def test_failed_ranks_helper_reports_comm_ranks(self):
        probe = {}

        @finishing
        def app(mpi):
            yield from mpi.compute(2.0 if mpi.rank == 1 else 10.0)
            probe[mpi.rank] = mpi.failed_ranks()
            yield from mpi.barrier()

        run = run_app(app, nranks=3, failures=[(1, 0.5)])
        assert run.result.aborted
        assert probe[0] == [1]

    def test_send_to_known_failed_rank_fails(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.compute(10.0)  # failure of 1 is known by now
                yield from mpi.send(1, nbytes=8, tag=0)

        run = run_app(app, nranks=2, failures=[(1, 1.0)])
        res = run.result
        assert res.aborted
        # the failure record already exists when the send is posted, so it
        # fails immediately at post time — the detection delay was paid
        # when the notification was delivered, not charged again per post
        assert res.abort_time == pytest.approx(10.0)

    def test_recv_posted_after_failure_fails_from_list(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.compute(10.0)
                yield from mpi.recv(1, tag=0)

        run = run_app(app, nranks=2, failures=[(1, 1.0)])
        assert run.result.aborted
        # immediate failure from the failed-process list (see above)
        assert run.result.abort_time == pytest.approx(10.0)

    def test_detection_timing_pre_posted_vs_post_notification(self):
        """Regression pin for both detection timings side by side: a
        request posted *before* the failure pays the detection timeout
        from the failure (released at ``max(t_fail, post) + timeout``); a
        request posted *after* the failure record exists fails at its own
        post time, with no second timeout."""
        pre = {}

        @finishing
        def pre_posted(mpi):
            if mpi.rank == 0:
                yield from mpi.recv(1, tag=0)  # posted at t=0, rank 1 dies at 5
                pre["unreachable"] = True

        run = run_app(pre_posted, nranks=2, failures=[(1, 5.0)])
        assert run.result.failures == [(1, 5.0)]
        assert run.result.abort_time == pytest.approx(5.0 + TIMEOUT)
        assert "unreachable" not in pre

        @finishing
        def post_notified(mpi):
            if mpi.rank == 0:
                yield from mpi.compute(5.0 + 2 * TIMEOUT)  # notified at 5 + timeout
                yield from mpi.recv(1, tag=0)

        run = run_app(post_notified, nranks=2, failures=[(1, 5.0)])
        assert run.result.failures == [(1, 5.0)]
        assert run.result.abort_time == pytest.approx(5.0 + 2 * TIMEOUT)

    def test_any_source_recv_released_on_failure(self):
        """Paper: the synchronization mechanism releases (and fails)
        unmatched MPI_ANY_SOURCE receive requests."""

        @finishing
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.recv(ANY_SOURCE, tag=0)

        run = run_app(app, nranks=3, failures=[(2, 5.0)])
        assert run.result.aborted
        assert run.result.abort_time == pytest.approx(5.0 + TIMEOUT)

    def test_blocked_rendezvous_send_released_on_failure(self):
        system = SystemConfig.small_test_system(nranks=2, eager_threshold=10)

        @finishing
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, nbytes=1000, tag=0)  # rendezvous, blocks
            else:
                yield from mpi.compute(50.0)

        run = run_app(app, nranks=2, system=system, failures=[(1, 3.0)])
        assert run.result.aborted
        assert run.result.abort_time == pytest.approx(50.0 + TIMEOUT)

    def test_messages_to_failed_process_deleted(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, nbytes=8, tag=0)  # in flight at t~0
                yield from mpi.compute(100.0)

        run = run_app(app, nranks=2, failures=[(1, 0.0)])
        # rank 1 died at startup; the message is dropped, rank 0 completes
        # its compute then hits finalize's barrier with a dead member
        assert run.result.aborted
        state = run.world.states[1]
        assert state.unexpected == {}

    def test_eager_message_from_dead_sender_still_deliverable(self):
        """Data that left the sender before its death arrives (like real
        MPI): rank 0 receives although rank 1 is already dead."""

        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 0:
                yield from mpi.compute(5.0)
                got = yield from mpi.recv(1, tag=0)
                return got
            yield from mpi.send(0, payload="last words", nbytes=8, tag=0)
            yield from mpi.compute(100.0)

        system = SystemConfig.small_test_system(nranks=2, strict_finalize=False)
        run = run_app(app, nranks=2, system=system, failures=[(1, 1.0)])
        assert run.result.exit_values[0] == "last words"
        assert run.result.states[1] is VpState.FAILED

    def test_whole_job_aborts_single_failure(self):
        """Default MPI fault model: one process failure ends the job."""

        @finishing
        def app(mpi):
            for _ in range(100):
                yield from mpi.compute(1.0)
                yield from mpi.barrier()

        run = run_app(app, nranks=8, failures=[(4, 10.0)])
        res = run.result
        assert res.aborted
        assert res.states[4] is VpState.FAILED
        assert all(
            s in (VpState.ABORTED, VpState.FAILED) for s in res.states.values()
        )

    def test_exit_without_finalize_is_failure(self):
        """Paper §IV-B: returning from main() without MPI_Finalize()."""

        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 1:
                return "early exit"  # no finalize
            yield from mpi.finalize()

        run = run_app(app, nranks=2)
        assert run.result.states[1] is VpState.FAILED
        assert run.result.aborted  # rank 0's finalize barrier detects it

    def test_fail_here_condition_based_injection(self):
        @finishing
        def app(mpi):
            yield from mpi.compute(2.0)
            if mpi.rank == 1 and mpi.wtime() >= 2.0:
                yield from mpi.fail_here("numerical blow-up")
            yield from mpi.barrier()

        run = run_app(app, nranks=2)
        assert run.result.failures == [(1, 2.0)]
        assert run.result.aborted


class TestErrorsReturn:
    def _system(self):
        # survivors exit without a (doomed) finalize barrier
        return SystemConfig.small_test_system(nranks=2, strict_finalize=False)

    def test_errors_return_raises_mpi_error(self):
        def app(mpi):
            yield from mpi.init()
            mpi.set_errhandler(ERRORS_RETURN)
            if mpi.rank == 0:
                try:
                    yield from mpi.recv(1, tag=0)
                except MpiError as err:
                    return (err.code, err.failed_rank, mpi.wtime())
            else:
                yield from mpi.compute(5.0)
            return None

        run = run_app(app, nranks=2, system=self._system(), failures=[(1, 1.0)])
        code, failed_rank, when = run.result.exit_values[0]
        assert code == ERR_PROC_FAILED
        assert failed_rank == 1
        assert when == pytest.approx(5.0 + TIMEOUT)
        assert not run.result.aborted  # rank 0 handled it and finished

    def test_user_errhandler_called_then_raises(self):
        calls = []

        def app(mpi):
            yield from mpi.init()

            def handler(comm, err):
                calls.append((comm.name, err.code))

            mpi.set_errhandler(handler)
            if mpi.rank == 0:
                try:
                    yield from mpi.recv(1, tag=0)
                except MpiError:
                    return "handled"
            else:
                yield from mpi.compute(5.0)
            return None

        run = run_app(app, nranks=2, system=self._system(), failures=[(1, 1.0)])
        assert run.result.exit_values[0] == "handled"
        assert calls == [("MPI_COMM_WORLD", ERR_PROC_FAILED)]

    def test_uncaught_mpi_error_is_process_crash(self):
        """An exception escaping the application fails that VP (it does
        not crash the simulation)."""

        def app(mpi):
            yield from mpi.init()
            mpi.set_errhandler(ERRORS_RETURN)
            if mpi.rank == 0:
                yield from mpi.recv(1, tag=0)  # raises MpiError, uncaught
            else:
                yield from mpi.compute(5.0)

        run = run_app(app, nranks=2, system=self._system(), failures=[(1, 1.0)])
        assert run.result.states[0] is VpState.FAILED
        crash = [e for e in run.result.log.category("failure") if e.rank == 0]
        assert crash and "MpiError" in crash[0].message

    def test_explicit_abort_from_application(self):
        def app(mpi):
            yield from mpi.init()
            yield from mpi.compute(float(mpi.rank))
            if mpi.rank == 1:
                yield from mpi.abort()
            yield from mpi.compute(100.0)
            yield from mpi.finalize()

        run = run_app(app, nranks=3)
        res = run.result
        assert res.aborted
        assert res.abort_rank == 1
        assert res.abort_time == pytest.approx(1.0)
