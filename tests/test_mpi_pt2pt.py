"""Point-to-point semantics of the simulated MPI layer."""

import numpy as np
import pytest

from repro.core.harness.config import SystemConfig
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.util.errors import ConfigurationError, DeadlockError
from tests.conftest import run_app


def finishing(body):
    """Wrap a per-rank body generator in init/finalize."""

    def app(mpi, *args):
        yield from mpi.init()
        result = yield from body(mpi, *args)
        yield from mpi.finalize()
        return result

    return app


class TestBlockingSendRecv:
    def test_payload_delivered(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, payload={"x": 41}, nbytes=100, tag=3)
                return None
            return (yield from mpi.recv(0, tag=3))

        run = run_app(app, nranks=2)
        assert run.result.completed
        assert run.result.exit_values[1] == {"x": 41}

    def test_recv_with_status(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, nbytes=64, tag=9)
                return None
            return (yield from mpi.recv(ANY_SOURCE, tag=ANY_TAG, status=True))

        run = run_app(app, nranks=2)
        payload, status = run.result.exit_values[1]
        assert payload is None
        assert status.source == 0
        assert status.tag == 9
        assert status.nbytes == 64

    def test_transfer_advances_receiver_clock(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, nbytes=0, tag=0)
            else:
                yield from mpi.recv(0, tag=0)
            return mpi.wtime()

        run = run_app(app, nranks=2)
        # one system-network hop at 1 us
        assert run.result.exit_values[1] >= 1e-6

    def test_numpy_payload_copied_at_send(self):
        """Eager buffering semantics: mutating after isend must not affect
        the receiver's data."""

        @finishing
        def app(mpi):
            if mpi.rank == 0:
                data = np.array([1.0, 2.0])
                req = yield from mpi.isend(1, payload=data, tag=0)
                data[:] = -1.0
                yield from mpi.wait(req)
                return None
            got = yield from mpi.recv(0, tag=0)
            return list(got)

        run = run_app(app, nranks=2)
        assert run.result.exit_values[1] == [1.0, 2.0]

    def test_send_to_self_eager(self):
        @finishing
        def app(mpi):
            yield from mpi.send(mpi.rank, payload="me", nbytes=8, tag=1)
            return (yield from mpi.recv(mpi.rank, tag=1))

        run = run_app(app, nranks=1)
        assert run.result.exit_values[0] == "me"

    def test_proc_null_send_recv_are_noops(self):
        @finishing
        def app(mpi):
            yield from mpi.send(PROC_NULL, nbytes=10)
            got = yield from mpi.recv(PROC_NULL)
            return got

        run = run_app(app, nranks=1)
        assert run.result.completed
        assert run.result.exit_values[0] is None

    def test_tag_out_of_range_rejected(self):
        @finishing
        def app(mpi):
            yield from mpi.send(0, nbytes=0, tag=-5)

        with pytest.raises(ConfigurationError):
            run_app(app, nranks=1)

    def test_unmatched_recv_deadlocks(self):
        @finishing
        def app(mpi):
            if mpi.rank == 1:
                yield from mpi.recv(0, tag=0)

        with pytest.raises(DeadlockError):
            run_app(app, nranks=2)


class TestMatching:
    def test_tag_selectivity(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, payload="a", nbytes=1, tag=1)
                yield from mpi.send(1, payload="b", nbytes=1, tag=2)
                return None
            second = yield from mpi.recv(0, tag=2)
            first = yield from mpi.recv(0, tag=1)
            return (first, second)

        run = run_app(app, nranks=2)
        assert run.result.exit_values[1] == ("a", "b")

    def test_non_overtaking_same_tag(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                for v in ("first", "second", "third"):
                    yield from mpi.send(1, payload=v, nbytes=1, tag=0)
                return None
            out = []
            for _ in range(3):
                out.append((yield from mpi.recv(0, tag=0)))
            return out

        run = run_app(app, nranks=2)
        assert run.result.exit_values[1] == ["first", "second", "third"]

    def test_any_source_receives_from_either(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                got = set()
                for _ in range(2):
                    payload = yield from mpi.recv(ANY_SOURCE, tag=0)
                    got.add(payload)
                return got
            yield from mpi.compute(0.001 * mpi.rank)
            yield from mpi.send(0, payload=f"from{mpi.rank}", nbytes=1, tag=0)
            return None

        run = run_app(app, nranks=3)
        assert run.result.exit_values[0] == {"from1", "from2"}

    def test_any_tag(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, payload="x", nbytes=1, tag=77)
                return None
            return (yield from mpi.recv(0, tag=ANY_TAG))

        run = run_app(app, nranks=2)
        assert run.result.exit_values[1] == "x"

    def test_wildcard_matches_lowest_seq_buffered(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, payload="early", nbytes=1, tag=5)
                yield from mpi.send(1, payload="late", nbytes=1, tag=6)
                return None
            yield from mpi.compute(1.0)  # both are buffered by now
            return (yield from mpi.recv(ANY_SOURCE, tag=ANY_TAG))

        run = run_app(app, nranks=2)
        assert run.result.exit_values[1] == "early"

    def test_communicators_isolate_traffic(self):
        @finishing
        def app(mpi):
            dup = yield from mpi.comm_dup()
            if mpi.rank == 0:
                yield from mpi.send(1, payload="world", nbytes=1, tag=0)
                yield from mpi.send(1, payload="dup", nbytes=1, tag=0, comm=dup)
                return None
            on_dup = yield from mpi.recv(0, tag=0, comm=dup)
            on_world = yield from mpi.recv(0, tag=0)
            return (on_world, on_dup)

        run = run_app(app, nranks=2)
        assert run.result.exit_values[1] == ("world", "dup")


class TestNonblocking:
    def test_irecv_before_send(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                req = mpi.irecv(1, tag=0)
                value = yield from mpi.wait(req)
                return value
            yield from mpi.compute(0.5)
            yield from mpi.send(0, payload=123, nbytes=4, tag=0)
            return None

        run = run_app(app, nranks=2)
        assert run.result.exit_values[0] == 123

    def test_waitall_order(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                reqs = [mpi.irecv(1, tag=t) for t in (0, 1, 2)]
                return (yield from mpi.waitall(reqs))
            for t in (2, 0, 1):
                yield from mpi.send(0, payload=t * 10, nbytes=4, tag=t)
            return None

        run = run_app(app, nranks=2)
        assert run.result.exit_values[0] == [0, 10, 20]

    def test_test_polling(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                req = mpi.irecv(1, tag=0)
                done, _ = yield from mpi.test(req)
                before = done
                yield from mpi.compute(2.0)
                done, value = yield from mpi.test(req)
                return (before, done, value)
            yield from mpi.compute(1.0)
            yield from mpi.send(0, payload="late", nbytes=1, tag=0)
            return None

        run = run_app(app, nranks=2)
        assert run.result.exit_values[0] == (False, True, "late")

    def test_isend_eager_completes_locally(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                req = yield from mpi.isend(1, nbytes=10, tag=0)
                assert req.done  # buffered
                yield from mpi.wait(req)
                return None
            yield from mpi.recv(0, tag=0)
            return None

        assert run_app(app, nranks=2).result.completed

    def test_sendrecv(self):
        @finishing
        def app(mpi):
            peer = 1 - mpi.rank
            return (
                yield from mpi.sendrecv(
                    peer, peer, send_payload=f"r{mpi.rank}", nbytes=4, send_tag=1
                )
            )

        run = run_app(app, nranks=2)
        assert run.result.exit_values[0] == "r1"
        assert run.result.exit_values[1] == "r0"


class TestRendezvous:
    def _system(self, nranks=2):
        # tiny eager threshold to force rendezvous
        return SystemConfig.small_test_system(nranks=nranks, eager_threshold=100)

    def test_large_payload_uses_rendezvous_and_delivers(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                req = yield from mpi.isend(1, payload="big", nbytes=1000, tag=0)
                assert not req.done  # awaiting CTS
                yield from mpi.wait(req)
                return None
            yield from mpi.compute(1.0)
            return (yield from mpi.recv(0, tag=0))

        run = run_app(app, nranks=2, system=self._system())
        assert run.result.exit_values[1] == "big"

    def test_sender_blocks_until_receiver_posts(self):
        @finishing
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, nbytes=1000, tag=0)
                return mpi.wtime()
            yield from mpi.compute(5.0)
            yield from mpi.recv(0, tag=0)
            return mpi.wtime()

        run = run_app(app, nranks=2, system=self._system())
        # sender could not complete before the receiver posted at t=5
        assert run.result.exit_values[0] >= 5.0

    def test_rendezvous_slower_than_eager_for_blocking_pair(self):
        def timed(nbytes):
            @finishing
            def app(mpi):
                if mpi.rank == 0:
                    yield from mpi.recv(1, tag=0)
                else:
                    yield from mpi.send(0, nbytes=nbytes, tag=0)
                return mpi.wtime()

            return run_app(app, nranks=2, system=self._system()).result.exit_values[0]

        assert timed(99) < timed(101)  # crossing the threshold adds the RTS/CTS round trip

    def test_unmatched_rendezvous_to_self_deadlocks(self):
        @finishing
        def app(mpi):
            yield from mpi.send(0, nbytes=1000, tag=0)

        with pytest.raises(DeadlockError):
            run_app(app, nranks=1, system=self._system(nranks=1))
