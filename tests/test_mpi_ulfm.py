"""ULFM user-level failure mitigation (paper future work 3).

The paper's conclusion: "We have also recently added initial ULFM support
according to the pending MPI ULFM proposal.  ULFM handles process faults at
the application through MPI-level error notification, i.e., the
MPI_ERR_PROC_FAILED error code, and MPI calls for remote process
notification, i.e., MPI_Comm_revoke(), and communicator reconfiguration,
i.e., MPI_Comm_shrink()."
"""

import pytest

from repro.core.harness.config import SystemConfig
from repro.mpi.constants import ANY_SOURCE, ERR_PROC_FAILED, ERR_REVOKED
from repro.mpi.errhandler import ERRORS_RETURN, MpiError
from tests.conftest import run_app


def ulfm_system(nranks, **kw):
    return SystemConfig.small_test_system(nranks=nranks, strict_finalize=False, **kw)


class TestFailureAck:
    def test_any_source_blocked_until_ack(self):
        """A known-unacknowledged failure fails wildcard receives; after
        MPI_Comm_failure_ack they proceed."""

        def app(mpi):
            yield from mpi.init()
            mpi.set_errhandler(ERRORS_RETURN)
            if mpi.rank == 0:
                yield from mpi.compute(5.0)  # rank 2's death is known
                try:
                    yield from mpi.recv(ANY_SOURCE, tag=0)
                    return "unexpected success"
                except MpiError as err:
                    assert err.code == ERR_PROC_FAILED
                yield from mpi.comm_failure_ack()
                assert mpi.comm_failure_get_acked() == [2]
                return (yield from mpi.recv(ANY_SOURCE, tag=0))
            if mpi.rank == 1:
                yield from mpi.compute(10.0)
                yield from mpi.send(0, payload="alive", nbytes=4, tag=0)
            else:  # rank 2: dies at t=2 (scheduled t=1)
                yield from mpi.compute(2.0)
            return None

        run = run_app(app, nranks=3, system=ulfm_system(3), failures=[(2, 1.0)])
        assert run.result.exit_values[0] == "alive"

    def test_named_source_recv_fails_regardless_of_ack(self):
        def app(mpi):
            yield from mpi.init()
            mpi.set_errhandler(ERRORS_RETURN)
            if mpi.rank == 0:
                yield from mpi.compute(5.0)
                yield from mpi.comm_failure_ack()
                try:
                    yield from mpi.recv(1, tag=0)
                except MpiError as err:
                    return err.code
            else:
                yield from mpi.compute(2.0)  # dies here
            return None

        run = run_app(app, nranks=2, system=ulfm_system(2), failures=[(1, 1.0)])
        assert run.result.exit_values[0] == ERR_PROC_FAILED


class TestRevoke:
    def test_revoke_interrupts_blocked_peers(self):
        def app(mpi):
            yield from mpi.init()
            mpi.set_errhandler(ERRORS_RETURN)
            if mpi.rank == 0:
                try:
                    yield from mpi.recv(1, tag=0)  # would block forever
                except MpiError as err:
                    return err.code
            else:
                yield from mpi.compute(2.0)
                yield from mpi.comm_revoke()
                return "revoked"

        run = run_app(app, nranks=2, system=ulfm_system(2))
        assert run.result.exit_values[0] == ERR_REVOKED
        assert run.result.exit_values[1] == "revoked"

    def test_operations_after_revoke_fail(self):
        def app(mpi):
            yield from mpi.init()
            mpi.set_errhandler(ERRORS_RETURN)
            if mpi.rank == 0:
                yield from mpi.comm_revoke()
            yield from mpi.compute(1.0)
            try:
                yield from mpi.send(1 - mpi.rank, nbytes=4, tag=0)
            except MpiError as err:
                return err.code
            return "sent"

        run = run_app(app, nranks=2, system=ulfm_system(2))
        assert run.result.exit_values[0] == ERR_REVOKED
        assert run.result.exit_values[1] == ERR_REVOKED

    def test_revoke_is_idempotent(self):
        def app(mpi):
            yield from mpi.init()
            mpi.set_errhandler(ERRORS_RETURN)
            yield from mpi.comm_revoke()
            yield from mpi.comm_revoke()
            return "ok"

        run = run_app(app, nranks=1, system=ulfm_system(1))
        assert run.result.exit_values[0] == "ok"


class TestShrink:
    def test_shrink_excludes_failed(self):
        def app(mpi):
            yield from mpi.init()
            mpi.set_errhandler(ERRORS_RETURN)
            yield from mpi.compute(5.0)  # rank 1 died at t=1
            new = yield from mpi.comm_shrink()
            return (mpi.comm_size(new), mpi.comm_rank(new))

        run = run_app(app, nranks=4, system=ulfm_system(4), failures=[(1, 1.0)])
        vals = run.result.exit_values
        # survivors 0, 2, 3 get dense new ranks 0, 1, 2
        assert vals[0] == (3, 0)
        assert vals[2] == (3, 1)
        assert vals[3] == (3, 2)

    def test_shrink_returns_shared_communicator(self):
        comms = {}

        def app(mpi):
            yield from mpi.init()
            new = yield from mpi.comm_shrink()
            comms[mpi.rank] = new
            total = yield from mpi.allreduce(1, nbytes=4, comm=new)
            return total

        run = run_app(app, nranks=3, system=ulfm_system(3))
        assert set(run.result.exit_values.values()) == {3}
        assert comms[0] is comms[1] is comms[2]

    def test_shrink_works_on_revoked_comm(self):
        def app(mpi):
            yield from mpi.init()
            mpi.set_errhandler(ERRORS_RETURN)
            if mpi.rank == 0:
                yield from mpi.comm_revoke()
            new = yield from mpi.comm_shrink()
            return mpi.comm_size(new)

        run = run_app(app, nranks=3, system=ulfm_system(3))
        assert set(run.result.exit_values.values()) == {3}

    def test_shrink_tolerates_failure_during_operation(self):
        """A member dying while others wait in shrink must not hang it."""

        def app(mpi):
            yield from mpi.init()
            mpi.set_errhandler(ERRORS_RETURN)
            if mpi.rank == 2:
                yield from mpi.compute(50.0)  # dies mid-way (scheduled t=5)
                return None
            new = yield from mpi.comm_shrink()
            return mpi.comm_size(new)

        run = run_app(app, nranks=3, system=ulfm_system(3), failures=[(2, 5.0)])
        assert run.result.exit_values[0] == 2
        assert run.result.exit_values[1] == 2

    def test_shrink_then_continue_workload(self):
        """The canonical ULFM recovery pattern: the rank that detects the
        failure revokes the communicator (unblocking peers stuck in the
        collective), everyone shrinks, work continues on the new comm."""

        def app(mpi):
            yield from mpi.init()
            mpi.set_errhandler(ERRORS_RETURN)
            world = None
            try:
                yield from mpi.compute(2.0 if mpi.rank != 1 else 10.0)
                yield from mpi.barrier()
            except MpiError as err:
                if err.code == ERR_PROC_FAILED:
                    yield from mpi.comm_revoke()
                world = yield from mpi.comm_shrink()
            if world is None:
                return None
            return (yield from mpi.allreduce(mpi.rank, nbytes=4, comm=world))

        run = run_app(app, nranks=4, system=ulfm_system(4), failures=[(1, 1.0)])
        vals = {r: v for r, v in run.result.exit_values.items() if v is not None}
        assert vals == {0: 5, 2: 5, 3: 5}  # 0 + 2 + 3


class TestAgree:
    def test_agree_logical_and(self):
        def app(mpi):
            yield from mpi.init()
            flag = mpi.rank != 2
            return (yield from mpi.comm_agree(flag))

        run = run_app(app, nranks=4, system=ulfm_system(4))
        assert set(run.result.exit_values.values()) == {False}

    def test_agree_true_when_all_true(self):
        def app(mpi):
            yield from mpi.init()
            return (yield from mpi.comm_agree(True))

        run = run_app(app, nranks=3, system=ulfm_system(3))
        assert set(run.result.exit_values.values()) == {True}

    def test_agree_excludes_failed_contributions(self):
        def app(mpi):
            yield from mpi.init()
            mpi.set_errhandler(ERRORS_RETURN)
            if mpi.rank == 1:
                yield from mpi.compute(50.0)  # dies before contributing
                return None
            yield from mpi.compute(2.0)
            return (yield from mpi.comm_agree(True))

        run = run_app(app, nranks=3, system=ulfm_system(3), failures=[(1, 1.0)])
        assert run.result.exit_values[0] is True
        assert run.result.exit_values[2] is True
