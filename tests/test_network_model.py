"""Communication cost model (repro.models.network.model)."""

import pytest

from repro.models.network.model import NetworkModel, NetworkTier, TierParams
from repro.models.network.topology import CrossbarTopology, TorusTopology
from repro.util.errors import ConfigurationError


def paper_net(**kw):
    return NetworkModel(TorusTopology((32, 32, 32)), **kw)


class TestProtocolSelection:
    def test_paper_eager_threshold(self):
        net = paper_net()
        assert net.eager_threshold == 256_000
        assert net.is_eager(256_000)
        assert not net.is_eager(256_001)

    def test_zero_bytes_eager(self):
        assert paper_net().is_eager(0)


class TestTiming:
    def test_one_hop_latency(self):
        net = paper_net()
        # nodes 0 and 1 are adjacent in the torus
        assert net.wire_latency(0, 1) == pytest.approx(1e-6)

    def test_multi_hop_latency_scales(self):
        net = paper_net()
        hops = net.hops(0, 2)
        assert hops == 2
        assert net.wire_latency(0, 2) == pytest.approx(2e-6)

    def test_transfer_time_includes_bandwidth(self):
        net = paper_net()
        t = net.transfer_time(32_000_000_000, 0, 1)  # 32 GB at 32 GB/s
        assert t == pytest.approx(1.0 + 1e-6)

    def test_serialization_time_excludes_latency(self):
        net = paper_net()
        assert net.serialization_time(32_000_000_000, 0, 1) == pytest.approx(1.0)

    def test_congestion_factor_scales_payload_only(self):
        net = paper_net(congestion_factor=2.0)
        t = net.transfer_time(32_000_000_000, 0, 1)
        assert t == pytest.approx(2.0 + 1e-6)

    def test_congestion_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_net(congestion_factor=0.5)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_net().transfer_time(-1, 0, 1)

    def test_overheads_parse_units(self):
        net = paper_net(send_overhead="2.6ms", recv_overhead="1ms")
        assert net.send_overhead == pytest.approx(2.6e-3)
        assert net.recv_overhead == pytest.approx(1e-3)


class TestPlacementAndTiers:
    def test_paper_one_rank_per_node(self):
        net = paper_net()
        assert net.node_of(5) == 5
        assert net.max_ranks() == 32768
        assert net.tier(0, 1) is NetworkTier.SYSTEM

    def test_multi_rank_placement(self):
        net = NetworkModel(TorusTopology((2, 2)), ranks_per_node=4, chips_per_node=2)
        assert net.node_of(3) == 0
        assert net.node_of(4) == 1
        assert net.tier(0, 1) is NetworkTier.ON_CHIP
        assert net.tier(0, 2) is NetworkTier.ON_NODE
        assert net.tier(0, 4) is NetworkTier.SYSTEM

    def test_intra_node_zero_hops(self):
        net = NetworkModel(TorusTopology((2, 2)), ranks_per_node=2)
        assert net.hops(0, 1) == 0

    def test_intra_node_faster_than_system(self):
        net = NetworkModel(TorusTopology((2, 2)), ranks_per_node=2)
        assert net.transfer_time(1024, 0, 1) < net.transfer_time(1024, 0, 2)

    def test_per_tier_detection_timeouts(self):
        """Paper: each simulated network (on-chip, on-node, system) has its
        own communication timeout."""
        net = NetworkModel(
            TorusTopology((2, 2)), ranks_per_node=4, chips_per_node=2, detection_timeout="10s"
        )
        assert net.detection_timeout(0, 4) == pytest.approx(10.0)
        assert net.detection_timeout(0, 2) == pytest.approx(1.0)
        assert net.detection_timeout(0, 1) == pytest.approx(0.1)

    def test_tier_override(self):
        custom = TierParams(latency=5e-9, bandwidth=1e12, detection_timeout=0.5)
        net = NetworkModel(TorusTopology((2, 2)), ranks_per_node=2, on_chip=custom, chips_per_node=1)
        assert net.detection_timeout(0, 1) == pytest.approx(0.5)

    def test_invalid_placement_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(TorusTopology((2,)), ranks_per_node=0)
        with pytest.raises(ConfigurationError):
            NetworkModel(TorusTopology((2,)), ranks_per_node=3, chips_per_node=2)

    def test_crossbar_single_hop_everywhere(self):
        net = NetworkModel(CrossbarTopology(16))
        assert net.wire_latency(0, 15) == pytest.approx(1e-6)


class TestTierParams:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TierParams(latency=-1.0, bandwidth=1.0, detection_timeout=1.0)
        with pytest.raises(ConfigurationError):
            TierParams(latency=1.0, bandwidth=0.0, detection_timeout=1.0)
        with pytest.raises(ConfigurationError):
            TierParams(latency=1.0, bandwidth=1.0, detection_timeout=-0.1)


class TestPerInstanceCaches:
    """The memoized cost methods must not keep the model alive.

    ``lru_cache`` around a *bound* method stored back onto the instance
    forms an instance -> cache -> bound-method -> instance cycle that only
    a cyclic gc pass can break; the engine disables gc during runs, so a
    campaign constructing one model per task used to ramp memory without
    bound.  The caches now reach the instance through a weak reference.
    """

    def test_model_collected_without_cyclic_gc(self):
        import gc
        import weakref

        gc.disable()
        try:
            net = NetworkModel(TorusTopology((4, 4)), ranks_per_node=2)
            # Populate every cache so held entries would pin the cycle.
            net.tier(0, 9)
            net.hops(0, 9)
            net.wire_latency(0, 9)
            net.transfer_time(4096, 0, 9)
            net.serialization_time(4096, 0, 9)
            net.detection_timeout(0, 9)
            ref = weakref.ref(net)
            del net
            assert ref() is None, "NetworkModel kept alive by its own caches"
        finally:
            gc.enable()

    def test_campaign_scale_no_leak(self):
        import gc
        import weakref

        gc.disable()
        try:
            refs = []
            for _ in range(50):
                net = NetworkModel(TorusTopology((8, 8)), ranks_per_node=1)
                for dst in range(1, 32):
                    net.transfer_time(1024, 0, dst)
                refs.append(weakref.ref(net))
                del net
            assert sum(1 for r in refs if r() is not None) == 0
        finally:
            gc.enable()

    def test_cached_results_match_uncached(self):
        net = paper_net()
        raw = type(net)
        assert net.tier(0, 1) is raw.tier(net, 0, 1)
        assert net.hops(0, 500) == raw.hops(net, 0, 500)
        assert net.transfer_time(8192, 0, 500) == pytest.approx(
            raw.transfer_time(net, 8192, 0, 500)
        )

    def test_invalidate_caches_picks_up_mutation(self):
        net = paper_net()
        before = net.transfer_time(1 << 20, 0, 1)
        net.congestion_factor = 2.0
        assert net.transfer_time(1 << 20, 0, 1) == pytest.approx(before)  # stale
        net.invalidate_caches()
        assert net.transfer_time(1 << 20, 0, 1) > before

    def test_cache_info_available(self):
        net = paper_net()
        net.tier(0, 1)
        net.tier(0, 1)
        info = net.tier.cache_info()
        assert info.hits >= 1 and info.misses >= 1
