"""End-to-end timing arithmetic of the communication paths."""

import pytest

from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim


def pingpong_time(nbytes, **overrides):
    """One-way latency measured at the receiver for a single message."""
    system = SystemConfig.small_test_system(nranks=2, **overrides)

    def app(mpi):
        yield from mpi.init()
        if mpi.rank == 0:
            yield from mpi.send(1, nbytes=nbytes, tag=0)
        else:
            yield from mpi.recv(0, tag=0)
        done = mpi.wtime()
        yield from mpi.finalize()
        return done

    return XSim(system).run(app).exit_values[1]


class TestEagerTiming:
    def test_zero_byte_is_pure_latency(self):
        # nodes 0 and 1 of the small torus are 1 hop apart at 1 us
        assert pingpong_time(0) == pytest.approx(1e-6, rel=1e-6)

    def test_payload_adds_serialization(self):
        t = pingpong_time(32_000)  # 32 kB at 32 GB/s = 1 us
        assert t == pytest.approx(2e-6, rel=1e-6)

    def test_send_overhead_delays_delivery(self):
        t = pingpong_time(0, send_overhead_native=1e-3, slowdown=1.0)
        # the sender's o_send is paid before injection, then wire latency
        assert t == pytest.approx(1e-3 + 1e-6, rel=1e-3)

    def test_recv_overhead_paid_by_receiver(self):
        t = pingpong_time(0, recv_overhead_native=2e-3, slowdown=1.0)
        assert t == pytest.approx(1e-6 + 2e-3, rel=1e-3)

    def test_latency_override(self):
        t = pingpong_time(0, link_latency="5us")
        assert t == pytest.approx(5e-6, rel=1e-6)

    def test_bandwidth_override(self):
        t = pingpong_time(32_000, link_bandwidth="1GB/s")
        assert t == pytest.approx(1e-6 + 32e-6, rel=1e-3)


class TestRendezvousTiming:
    def test_handshake_roundtrip_added(self):
        """RTS + CTS add two wire latencies before the payload moves."""
        eager = pingpong_time(1000)
        rdv = pingpong_time(1000, eager_threshold=100)
        # the difference is the RTS/CTS round trip: 2 x 1 us
        assert rdv - eager == pytest.approx(2e-6, rel=1e-2)

    def test_congestion_scales_payload(self):
        base = pingpong_time(320_000_000)  # 10 ms of serialization
        congested = pingpong_time(320_000_000, congestion_factor=3.0)
        assert congested / base == pytest.approx(3.0, rel=0.01)


class TestMultiHopTiming:
    def test_distance_scales_latency(self):
        """Corner-to-corner on the torus pays diameter x latency."""
        system = SystemConfig.paper_system(nranks=64, slowdown=1.0,
                                           send_overhead_native=0.0,
                                           recv_overhead_native=0.0)
        net = system.make_network()
        far = max(range(64), key=lambda r: net.hops(0, r))
        hops = net.hops(0, far)
        assert hops == net.topology.diameter()

        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 0:
                yield from mpi.send(mpi.size - 1 if far == mpi.size - 1 else far,
                                    nbytes=0, tag=0)
            elif mpi.rank == far:
                yield from mpi.recv(0, tag=0)
            done = mpi.wtime()
            yield from mpi.finalize()
            return done

        result = XSim(system).run(app)
        assert result.exit_values[far] == pytest.approx(hops * 1e-6, rel=1e-6)
