"""The repro.obs observability layer: event bus, exporters, timeline."""

import json
import math

import pytest

from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim
from repro.mpi.trace import CommTrace
from repro.obs import (
    HOST,
    SIM,
    LatencyStats,
    ObsEvent,
    Observer,
    TimelineReport,
    load_events,
    to_chrome,
    to_csv,
    to_jsonl,
    write_export,
)
from repro.util.errors import InvariantViolation
from tests.conftest import run_app


def noop(mpi):
    yield from mpi.init()
    yield from mpi.finalize()


def heat_sim(nranks=8, iterations=6, failure=None, observe=True, **xsim_kwargs):
    """A small heat3d run under the paper timing model, observed."""
    from repro.apps.heat3d import HeatConfig, heat3d
    from repro.core.checkpoint.store import CheckpointStore

    system = SystemConfig.paper_system(nranks=nranks)
    workload = HeatConfig.paper_workload(
        checkpoint_interval=3, nranks=nranks, iterations=iterations
    )
    sim = XSim(system, observe=observe, **xsim_kwargs)
    if failure is not None:
        sim.inject_failure(*failure)
    result = sim.run(heat3d, args=(workload, CheckpointStore()))
    return sim, result


def sample_observer() -> Observer:
    """A tiny synthetic timeline covering both domains and all tracks."""
    obs = Observer()
    obs.span(0.0, 2.0, "coll:barrier", rank=0)
    obs.span(0.0, 2.5, "coll:barrier", rank=1)
    obs.instant(1.5, "inject", rank=1, track="resilience", args={"reason": "test"})
    obs.instant(1.75, "detect", rank=0, track="resilience",
                args={"failed_rank": 1, "latency": 0.25})
    obs.span(0.0, 3.0, "segment", track="simulator", args={"index": 0})
    obs.host_span(10.0, 10.5, "engine-run", track="engine", args={"events": 42})
    return obs


class TestObserver:
    def test_default_tracks_from_rank(self):
        obs = Observer()
        obs.instant(1.0, "tick", rank=3)
        obs.instant(2.0, "tock")
        assert obs.events[0].track == "rank 3"
        assert obs.events[1].track == "simulator"

    def test_span_duration_and_end(self):
        obs = Observer()
        obs.span(1.0, 3.5, "work", rank=0)
        (e,) = obs.events
        assert (e.kind, e.start, e.duration, e.end) == ("span", 1.0, 2.5, 3.5)

    def test_args_canonicalized_sorted(self):
        obs = Observer()
        obs.instant(0.0, "a", args={"z": 1, "a": 2})
        assert obs.events[0].args == (("a", 2), ("z", 1))

    def test_domain_split(self):
        obs = sample_observer()
        assert {e.domain for e in obs.sim_events()} == {SIM}
        assert {e.domain for e in obs.host_events()} == {HOST}
        assert len(obs.sim_events()) + len(obs.host_events()) == len(obs.events)

    def test_extend_merges_foreign_events(self):
        a, b = Observer(), Observer()
        b.instant(5.0, "remote", rank=7)
        a.extend(b.events)
        assert a.events == b.events

    def test_detached_by_default(self):
        run = run_app(noop, nranks=2)
        assert run.sim.observer is None
        assert run.engine.obs is None
        assert run.world.obs is None

    def test_empty_observer_is_not_falsy(self):
        """Regression: Observer once defined __len__, so a fresh (empty)
        instance was falsy and ``XSim(observe=Observer())`` silently
        dropped it."""
        assert bool(Observer())


class TestChromeExport:
    def test_valid_trace_event_schema(self):
        doc = json.loads(to_chrome(sample_observer()))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} <= {"M", "X", "i"}
        for e in events:
            if e["ph"] == "i":
                assert e["s"] == "t"
            if e["ph"] == "X":
                assert e["dur"] >= 0
        # sim process metadata present, host excluded by default
        names = [e["args"]["name"] for e in events if e["name"] == "process_name"]
        assert names == ["simulation (virtual time)"]
        assert {e["pid"] for e in events} == {1}

    def test_microsecond_timestamps(self):
        doc = json.loads(to_chrome(sample_observer()))
        inject = next(e for e in doc["traceEvents"] if e["name"] == "inject")
        assert inject["ts"] == pytest.approx(1.5e6)

    def test_rank_stored_in_args(self):
        doc = json.loads(to_chrome(sample_observer()))
        inject = next(e for e in doc["traceEvents"] if e["name"] == "inject")
        assert inject["args"]["rank"] == 1
        assert inject["args"]["reason"] == "test"

    def test_track_display_order(self):
        """Rank tracks numerically first, then resilience, then simulator."""
        obs = Observer()
        obs.instant(0.0, "x", rank=10)
        obs.instant(0.0, "x", rank=2)
        obs.instant(0.0, "y", track="resilience")
        obs.instant(0.0, "z")  # simulator
        doc = json.loads(to_chrome(obs))
        tids = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert tids["rank 2"] < tids["rank 10"] < tids["resilience"] < tids["simulator"]

    def test_include_host_adds_second_process(self):
        doc = json.loads(to_chrome(sample_observer(), include_host=True))
        assert {e["pid"] for e in doc["traceEvents"]} == {1, 2}
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "process_name"
        ]
        assert "execution (wall clock)" in names


class TestExportDeterminism:
    def test_output_is_pure_function_of_event_multiset(self):
        """The core byte-identity guarantee: producer interleaving (serial
        dispatch vs shard merge order) must not affect the export."""
        forward = sample_observer()
        reversed_ = Observer()
        reversed_.extend(reversed(forward.events))
        assert to_chrome(forward) == to_chrome(reversed_)
        assert to_jsonl(forward) == to_jsonl(reversed_)
        assert to_csv(forward) == to_csv(reversed_)

    def test_jsonl_golden(self):
        obs = Observer()
        obs.instant(1.5, "inject", rank=3, track="resilience", args={"reason": "x"})
        assert to_jsonl(obs) == (
            '{"args":{"reason":"x"},"domain":"sim","duration":0.0,'
            '"kind":"instant","name":"inject","rank":3,"start":1.5,'
            '"track":"resilience"}\n'
        )

    def test_csv_golden(self):
        obs = Observer()
        obs.span(0.1, 0.30000000000000004, "w", rank=2)
        assert to_csv(obs) == (
            "domain,kind,track,name,start,duration,rank,args\n"
            'sim,span,rank 2,w,0.1,0.20000000000000004,2,{}\n'
        )

    def test_empty_exports(self):
        obs = Observer()
        assert to_jsonl(obs) == ""
        assert to_csv(obs).splitlines() == ["domain,kind,track,name,start,duration,rank,args"]
        assert json.loads(to_chrome(obs))["traceEvents"] == []


class TestRoundTrip:
    def test_jsonl_roundtrip_exact(self, tmp_path):
        obs = sample_observer()
        path = str(tmp_path / "t.jsonl")
        count = write_export(obs, path)
        loaded = load_events(path)
        expected = sorted(obs.sim_events(), key=ObsEvent.sort_key)
        assert loaded == expected
        assert count == len(expected)

    def test_csv_roundtrip_exact(self, tmp_path):
        """repr() floats in the CSV make the round-trip bit-exact."""
        obs = sample_observer()
        path = str(tmp_path / "t.csv")
        write_export(obs, path)
        assert load_events(path) == sorted(obs.sim_events(), key=ObsEvent.sort_key)

    def test_chrome_roundtrip_recovers_tracks_and_ranks(self, tmp_path):
        obs = sample_observer()
        path = str(tmp_path / "t.json")
        write_export(obs, path)
        loaded = load_events(path)
        expected = sorted(obs.sim_events(), key=ObsEvent.sort_key)
        assert [(e.track, e.name, e.rank, e.kind) for e in loaded] == [
            (e.track, e.name, e.rank, e.kind) for e in expected
        ]
        for got, want in zip(loaded, expected):
            assert got.start == pytest.approx(want.start)
            assert got.duration == pytest.approx(want.duration)

    def test_include_host_roundtrips_host_events(self, tmp_path):
        obs = sample_observer()
        path = str(tmp_path / "t.jsonl")
        count = write_export(obs, path, include_host=True)
        assert count == len(obs.events)
        assert any(e.domain == HOST for e in load_events(path))


class TestSimObservation:
    def test_clean_run_has_collectives_no_resilience(self):
        sim, result = heat_sim()
        assert result.completed
        spans = [e for e in sim.observer.sim_events() if e.name.startswith("coll:")]
        assert spans, "collective spans missing"
        assert not any(e.track == "resilience" for e in sim.observer.events)
        # the serial run path records one wall-clock engine-run span
        assert [e.name for e in sim.observer.host_events()] == ["engine-run"]

    def test_failure_run_resilience_sequence(self):
        _, clean = heat_sim(observe=None)
        victim, t_fail = 2, 0.4 * clean.exit_time
        sim, result = heat_sim(failure=(victim, t_fail))
        assert result.aborted and not result.completed
        res = [e for e in sim.observer.events if e.track == "resilience"]
        by_name = {}
        for e in res:
            by_name.setdefault(e.name, []).append(e)
        (inject,) = by_name["inject"]
        assert inject.rank == victim
        assert t_fail <= inject.start < result.exit_time
        assert len(by_name["notify"]) == 7  # every surviving rank hears of it
        assert by_name["detect"], "no rank detected the failure"
        for e in by_name["detect"]:
            assert dict(e.args)["failed_rank"] == victim
            assert dict(e.args)["latency"] >= 0
        assert len(by_name["abort"]) == 1
        assert inject.start <= min(e.start for e in by_name["notify"])

    def test_detail_gates_wait_spans(self):
        plain, _ = heat_sim(nranks=4, iterations=4)
        detailed, _ = heat_sim(nranks=4, iterations=4, observe=Observer(detail=True))
        assert not any(e.name == "wait" for e in plain.observer.events)
        waits = [e for e in detailed.observer.events if e.name == "wait"]
        assert waits
        assert all(e.kind == "span" and e.domain == SIM for e in waits)

    def test_observer_instance_passes_through(self):
        mine = Observer()
        sim, _ = heat_sim(nranks=4, iterations=4, observe=mine)
        assert sim.observer is mine
        assert mine.events


class TestShardedExportParity:
    def test_sharded_export_byte_identical_to_serial(self):
        _, clean = heat_sim(observe=None)
        failure = (2, 0.4 * clean.exit_time)
        serial, r1 = heat_sim(failure=failure)
        sharded, r2 = heat_sim(failure=failure, shards=2, shard_transport="inline")
        assert r1.exit_time == r2.exit_time
        assert to_chrome(serial.observer) == to_chrome(sharded.observer)
        assert to_jsonl(serial.observer) == to_jsonl(sharded.observer)
        # resilience instants survive sharding exactly once each
        res = [e for e in sharded.observer.sim_events() if e.track == "resilience"]
        assert sum(1 for e in res if e.name == "inject") == 1
        assert sum(1 for e in res if e.name == "abort") == 1


class TestTimelineReport:
    def test_latency_stats(self):
        s = LatencyStats.of([1.0, 3.0, 2.0])
        assert (s.count, s.min, s.mean, s.max) == (3, 1.0, 2.0, 3.0)

    def test_detection_latencies_per_rank(self):
        report = TimelineReport(sample_observer())
        assert report.detection_latencies() == {0: [0.25]}
        assert report.detection_stats()[0].count == 1

    def test_causal_tie_break_at_same_instant(self):
        obs = Observer()
        obs.instant(1.0, "detect", rank=0, track="resilience")
        obs.instant(1.0, "inject", rank=1, track="resilience")
        names = [e.name for e in TimelineReport(obs).resilience_events()]
        assert names == ["inject", "detect"]

    def test_render_sections(self):
        text = TimelineReport(sample_observer()).render(max_rows=3)
        assert "== timeline report ==" in text
        assert "-- resilience timeline --" in text
        assert "-- per-rank detection latency --" in text
        assert "-- joined timeline (head) --" in text

    def test_from_sim_requires_observer(self):
        run = run_app(noop, nranks=2)
        with pytest.raises(ValueError, match="observe"):
            TimelineReport.from_sim(run.sim)

    def test_joined_rows_include_drop_instant(self):
        trace = CommTrace()
        trace.record_post(0, 1.0, src=0, dst=1, ctx=2, tag=0, nbytes=64, protocol="eager")
        trace.record_delivery(0, 2.5, dropped=True)
        rows = TimelineReport([], comm_records=list(trace)).joined_rows()
        assert (2.5, "comm", "drop seq=0 0->1") in rows


class TestRestartObservation:
    def test_driver_records_restart_and_segments(self):
        from repro.apps.naive_cr import NaiveCrConfig, naive_cr
        from repro.core.faults.schedule import FailureSchedule
        from repro.core.restart import RestartDriver

        driver = RestartDriver(
            SystemConfig.small_test_system(nranks=4),
            naive_cr,
            make_args=lambda store: (NaiveCrConfig(work=100.0, tau=10.0, delta=1.0), store),
            schedule=FailureSchedule.of((2, 55.0)),
            observe=True,
        )
        run = driver.run()
        assert run.completed and run.restarts == 1
        obs = driver.observer
        restarts = [e for e in obs.events if e.name == "restart"]
        assert len(restarts) == 1
        assert restarts[0].track == "resilience"
        assert dict(restarts[0].args) == {"segment": 1}
        segments = [e for e in obs.events if e.name == "segment"]
        assert len(segments) == 2
        # segments tile the continuous virtual clock
        assert segments[1].start == segments[0].end
        assert any(e.name == "inject" for e in obs.events)


class TestCampaignObservation:
    def test_serial_executor_emits_task_spans(self):
        from repro.core.harness.parallel import CampaignExecutor, RunSpec

        obs = Observer()
        specs = [
            RunSpec("selftest", key=("echo", i), params={"value": i}) for i in range(3)
        ]
        executor = CampaignExecutor(max_workers=1, observe=obs)
        assert executor.run(specs) == [0, 1, 2]
        spans = [e for e in obs.events if e.name == "task"]
        assert len(spans) == 3
        assert all(e.domain == HOST and e.track == "campaign" for e in spans)
        assert [dict(e.args)["key"] for e in spans] == [("echo", i) for i in range(3)]

    def test_detached_executor_unchanged(self):
        from repro.core.harness.parallel import CampaignExecutor, RunSpec

        executor = CampaignExecutor(max_workers=1)
        assert executor.run([RunSpec("selftest", key="k", params={"value": 9})]) == [9]
        assert executor.last_mode == "serial"


class TestSanitizerOrphanCheck:
    def app(self, mpi):
        yield from mpi.init()
        if mpi.rank == 0:
            yield from mpi.send(1, nbytes=10, tag=0)
        else:
            yield from mpi.recv(0, tag=0)
        yield from mpi.finalize()

    def test_from_start_set_when_traced_from_launch(self):
        system = SystemConfig.small_test_system(nranks=2)
        sim = XSim(system, record_trace=True, check=True)
        result = sim.run(self.app)
        assert result.completed
        assert sim.world.trace.from_start
        assert sim.world.trace.orphan_deliveries == 0

    def test_orphans_violate_when_traced_from_launch(self):
        """Regression: orphan deliveries used to be silently ignored even
        when the trace provably saw every post."""
        system = SystemConfig.small_test_system(nranks=2)
        sim = XSim(system, record_trace=True, check=True)
        sim.run(self.app)
        sim.world.trace.record_delivery(10_000, 1.0, dropped=False)
        assert sim.world.trace.orphan_deliveries == 1
        with pytest.raises(InvariantViolation, match="comm-trace-orphans"):
            sim.engine.check.on_run_end()

    def test_midrun_attach_orphans_tolerated(self):
        system = SystemConfig.small_test_system(nranks=2)
        sim = XSim(system, record_trace=True, check=True)
        sim.run(self.app)
        sim.world.trace.from_start = False  # as if attached mid-run
        sim.world.trace.record_delivery(10_000, 1.0, dropped=False)
        sim.engine.check.on_run_end()  # no violation


class TestCli:
    def test_trace_out_and_timeline(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "trace.json")
        assert (
            main(
                [
                    "app",
                    "--app",
                    "heat3d",
                    "--ranks",
                    "8",
                    "--iterations",
                    "6",
                    "--interval",
                    "3",
                    "--xsim-failures",
                    "2@20.0",
                    "--trace-out",
                    path,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "exported" in out
        doc = json.loads(open(path).read())
        assert any(e.get("ph") == "i" for e in doc["traceEvents"])
        assert main(["timeline", path, "--rows", "5"]) == 0
        report = capsys.readouterr().out
        assert "== timeline report ==" in report
        assert "inject" in report

    def test_trace_out_jsonl_extension(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "trace.jsonl")
        assert (
            main(
                ["app", "--app", "heat3d", "--ranks", "4", "--iterations", "4",
                 "--interval", "2", "--trace-out", path]
            )
            == 0
        )
        capsys.readouterr()
        events = load_events(path)
        assert events and all(e.domain == SIM for e in events)
