"""The parallel campaign executor: dispatch, determinism, degradation.

The load-bearing property is *bit-identical results*: a campaign fanned
out over worker processes must measure exactly what the serial sweep
measures, because the paper's experiments are deterministic given their
seeds.  These tests run small-scale campaigns both ways and compare the
full result objects.
"""

import pytest

from repro.core.faults.finject import FinjectCampaign
from repro.core.harness.experiment import Table2Config, run_table2
from repro.core.harness.parallel import (
    CampaignExecutor,
    RunSpec,
    default_jobs,
    run_spec,
    task,
)
from repro.util.errors import CampaignTaskError, ConfigurationError


@task("test-echo")
def _echo(*, value):
    return value


@task("test-boom")
def _boom(*, message):
    raise RuntimeError(message)


class TestExecutorBasics:
    def test_results_in_spec_order(self):
        specs = [RunSpec("test-echo", key=(i,), params={"value": i * 10}) for i in range(5)]
        ex = CampaignExecutor(max_workers=1)
        assert ex.run(specs) == [0, 10, 20, 30, 40]
        assert ex.last_mode == "serial"

    def test_single_spec_runs_in_process(self):
        ex = CampaignExecutor(max_workers=8)
        assert ex.run([RunSpec("test-echo", params={"value": "x"})]) == ["x"]
        assert ex.last_mode == "serial"

    def test_unknown_kind_fails_fast(self):
        ex = CampaignExecutor(max_workers=4)
        with pytest.raises(ConfigurationError, match="unknown task kind"):
            ex.run([RunSpec("no-such-task")])

    def test_run_spec_dispatches(self):
        assert run_spec(RunSpec("test-echo", params={"value": 7})) == 7

    def test_task_errors_propagate_serially(self):
        ex = CampaignExecutor(max_workers=1)
        with pytest.raises(RuntimeError, match="bad"):
            ex.run([RunSpec("test-boom", params={"message": "bad"})])

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigurationError):
            CampaignExecutor(max_workers=0)

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.delenv("XSIM_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("XSIM_JOBS", "6")
        assert default_jobs() == 6
        assert CampaignExecutor().max_workers == 6
        monkeypatch.setenv("XSIM_JOBS", "zero")
        with pytest.raises(ConfigurationError):
            default_jobs()
        monkeypatch.setenv("XSIM_JOBS", "0")
        with pytest.raises(ConfigurationError):
            default_jobs()

    def test_unpicklable_params_degrade_to_serial(self):
        # A lambda cannot cross the process boundary; the pool attempt
        # must fall back to an in-process run with identical results
        # (tasks defined in a test module only exist in this process
        # anyway, which the fallback also covers).
        specs = [
            RunSpec("test-echo", key=(i,), params={"value": (lambda i=i: i)})
            for i in range(3)
        ]
        ex = CampaignExecutor(max_workers=2)
        results = ex.run(specs)
        assert [fn() for fn in results] == [0, 1, 2]
        assert ex.last_mode == "fallback-serial"

    def test_duplicate_task_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            task("test-echo")(lambda: None)


class TestDegradedPaths:
    """Pool failure modes: error transport, ordering, fallback parity."""

    def test_pool_results_in_spec_order(self):
        specs = [RunSpec("selftest", key=(i,), params={"value": i * 11}) for i in range(8)]
        ex = CampaignExecutor(max_workers=3)
        assert ex.run(specs) == [0, 11, 22, 33, 44, 55, 66, 77]
        assert ex.last_mode == "pool"

    def test_task_errors_propagate_from_pool(self):
        # A raising task must surface its own exception from the pool path
        # — not trigger the fallback-serial rerun — and must not wedge the
        # executor for later campaigns.
        specs = [RunSpec("selftest", key=(i,), params={"value": i}) for i in range(4)]
        specs.insert(2, RunSpec("selftest", key=("boom",), params={"raise_message": "pool boom"}))
        ex = CampaignExecutor(max_workers=2)
        with pytest.raises(RuntimeError, match="pool boom"):
            ex.run(specs)
        assert ex.last_mode == "pool"
        ok = [RunSpec("selftest", key=(i,), params={"value": i}) for i in range(4)]
        assert ex.run(ok) == [0, 1, 2, 3]
        assert ex.last_mode == "pool"

    def test_unpicklable_task_exception_substituted(self):
        # An exception that cannot cross the process boundary is replaced
        # by a CampaignTaskError carrying the original type and message.
        specs = [
            RunSpec(
                "selftest",
                key=("bad", 0),
                params={"raise_message": "cannot travel", "unpicklable": True},
            ),
            RunSpec("selftest", key=(1,), params={"value": 1}),
        ]
        ex = CampaignExecutor(max_workers=2)
        with pytest.raises(CampaignTaskError, match="cannot travel") as excinfo:
            ex.run(specs)
        assert ex.last_mode == "pool"
        assert excinfo.value.exc_type == "LocalError"
        assert excinfo.value.key == ("bad", 0)

    def test_campaign_task_error_pickles(self):
        import pickle

        err = CampaignTaskError("selftest", ("k", 3), "ValueError", "detail")
        clone = pickle.loads(pickle.dumps(err))
        assert str(clone) == str(err)
        assert (clone.kind, clone.key, clone.exc_type) == ("selftest", ("k", 3), "ValueError")

    def test_force_fallback_matches_pool(self):
        specs = [
            RunSpec(
                "finject-victim",
                key=("victim", i),
                params={
                    "victim": FinjectCampaign().victim,
                    "victim_id": i,
                    "max_injections": 50,
                    "seed": 11,
                },
            )
            for i in range(8)
        ]
        pool = CampaignExecutor(max_workers=4)
        pool_results = pool.run(specs)
        fallback = CampaignExecutor(max_workers=4, force_fallback=True)
        fallback_results = fallback.run(specs)
        assert pool.last_mode == "pool"
        assert fallback.last_mode == "fallback-serial"
        assert pool_results == fallback_results


class TestCampaignDeterminism:
    """Parallel campaigns measure exactly what serial campaigns measure."""

    def test_table2_parallel_matches_serial(self):
        # Small Table II grid: every cell must be byte-identical —
        # E1, E2, F, and MTTF_a are exact float/int equality.
        serial = run_table2(Table2Config(nranks=64, iterations=200, jobs=1))
        parallel = run_table2(Table2Config(nranks=64, iterations=200, jobs=4))
        assert serial == parallel
        assert len(serial) == 7  # baseline + 2 MTTFs x 3 intervals

    def test_finject_parallel_matches_serial(self):
        serial = FinjectCampaign(victims=20, independent_streams=True, jobs=1).run()
        parallel = FinjectCampaign(victims=20, independent_streams=True, jobs=4).run()
        assert serial == parallel
        assert len(serial.injections_to_failure) == 20

    def test_finject_default_stream_is_unchanged(self):
        # The calibrated Table I draw (shared sequential stream, seed 29)
        # must not be affected by the executor work.
        result = FinjectCampaign(victims=20).run()
        independent = FinjectCampaign(victims=20, independent_streams=True).run()
        assert result != independent  # different draws by design

    def test_finject_parallel_requires_independent_streams(self):
        with pytest.raises(ConfigurationError, match="independent_streams"):
            FinjectCampaign(victims=4, jobs=2).run()


class TestCampaignTasks:
    def test_soft_error_trial_task(self):
        outcome = run_spec(
            RunSpec(
                "soft-error-trial",
                params={
                    "nranks": 8,
                    "interval": 100,
                    "iterations": 100,
                    "rate_per_rank": 0.0005,
                    "horizon": 2000.0,
                    "seed": 3,
                },
            )
        )
        assert outcome["scheduled_flips"] >= 0
        assert set(outcome["counts"]) == {"crash", "sdc", "benign", "no-target"}
        assert outcome["exit_time"] > 0.0

    def test_sweep_e1_task_reacts_to_overrides(self):
        # A slower machine (2x slowdown) must lengthen the simulated run;
        # this proves the overrides reach the worker's SystemConfig.
        base = run_spec(
            RunSpec(
                "sweep-e1",
                params={
                    "nranks": 8,
                    "interval": 100,
                    "iterations": 100,
                    "seed": 0,
                    "system_overrides": {},
                },
            )
        )
        slowed = run_spec(
            RunSpec(
                "sweep-e1",
                params={
                    "nranks": 8,
                    "interval": 100,
                    "iterations": 100,
                    "seed": 0,
                    "system_overrides": {"slowdown": 2000.0},
                },
            )
        )
        assert slowed > base * 1.5
