"""Injection policies (single-uniform and component-reliability-driven)."""

import numpy as np
import pytest

from repro.apps.naive_cr import NaiveCrConfig, naive_cr
from repro.core.faults.policies import (
    ReliabilityInjectionPolicy,
    SingleUniformFailurePolicy,
)
from repro.core.faults.reliability import ExponentialReliability, WeibullReliability
from repro.core.harness.config import SystemConfig
from repro.core.restart import RestartDriver
from repro.util.errors import ConfigurationError, SimulationError
from repro.util.rng import RngStreams


class TestSingleUniformFailurePolicy:
    def test_draws_exactly_one(self):
        policy = SingleUniformFailurePolicy(3000.0)
        rng = RngStreams(0).get("t")
        draws = policy.draw_segment(rng, nranks=64, horizon=float("inf"))
        assert len(draws) == 1
        rank, t = draws[0]
        assert 0 <= rank < 64
        assert 0 <= t < 6000.0

    def test_matches_legacy_mttf_draw_sequence(self):
        """The shorthand must reproduce the Table II calibration draws."""
        from repro.core.faults.reliability import MttfInjectionPolicy

        legacy = MttfInjectionPolicy(3000.0).draw(RngStreams(5).get("x"), 512)
        wrapped = SingleUniformFailurePolicy(3000.0).draw_segment(
            RngStreams(5).get("x"), 512, float("inf")
        )
        assert wrapped == [legacy]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SingleUniformFailurePolicy(0.0)


class TestReliabilityInjectionPolicy:
    def test_exponential_components_target_system_mttf(self):
        policy = ReliabilityInjectionPolicy.for_system_mttf(1000.0, nranks=100)
        assert isinstance(policy.component, ExponentialReliability)
        assert policy.component.mttf == pytest.approx(100_000.0)
        # empirical: mean time of the earliest drawn failure ~ system MTTF
        rng = RngStreams(1).get("t")
        firsts = []
        for _ in range(300):
            draws = policy.draw_segment(rng, nranks=100, horizon=float("inf"))
            firsts.append(draws[0][1] if draws else np.nan)
        assert np.nanmean(firsts) == pytest.approx(1000.0, rel=0.15)

    def test_weibull_components(self):
        policy = ReliabilityInjectionPolicy.for_system_mttf(500.0, nranks=16, shape=2.0)
        assert isinstance(policy.component, WeibullReliability)
        rng = RngStreams(2).get("t")
        firsts = []
        for _ in range(400):
            draws = policy.draw_segment(rng, nranks=16, horizon=float("inf"))
            firsts.append(draws[0][1])
        assert np.mean(firsts) == pytest.approx(500.0, rel=0.15)

    def test_horizon_filters_draws(self):
        policy = ReliabilityInjectionPolicy(ExponentialReliability(mttf=100.0))
        rng = RngStreams(3).get("t")
        draws = policy.draw_segment(rng, nranks=50, horizon=10.0)
        assert all(t < 10.0 for _, t in draws)

    def test_draws_sorted_by_time(self):
        policy = ReliabilityInjectionPolicy(ExponentialReliability(mttf=10.0))
        rng = RngStreams(4).get("t")
        draws = policy.draw_segment(rng, nranks=20, horizon=float("inf"))
        times = [t for _, t in draws]
        assert times == sorted(times)
        assert len(draws) == 20  # every node eventually fails

    def test_can_draw_multiple_failures(self):
        """Unlike the Table II policy, several nodes can fail in one
        segment (that is the point of the component model)."""
        policy = ReliabilityInjectionPolicy(ExponentialReliability(mttf=100.0))
        rng = RngStreams(5).get("t")
        draws = policy.draw_segment(rng, nranks=100, horizon=50.0)
        assert len(draws) >= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReliabilityInjectionPolicy.for_system_mttf(0.0, 4)
        policy = ReliabilityInjectionPolicy(ExponentialReliability(mttf=1.0))
        with pytest.raises(ConfigurationError):
            policy.draw_segment(RngStreams(0).get("t"), 0, 1.0)


class TestDriverIntegration:
    def _driver(self, **kw):
        system = SystemConfig.small_test_system(nranks=8)
        cfg = NaiveCrConfig(work=100.0, tau=10.0, delta=1.0)
        return RestartDriver(
            system, naive_cr, make_args=lambda store: (cfg, store), **kw
        )

    def test_reliability_policy_through_driver(self):
        policy = ReliabilityInjectionPolicy.for_system_mttf(80.0, nranks=8)
        run = self._driver(policy=policy, seed=3, max_restarts=500).run()
        assert run.completed
        assert run.f >= 1  # at MTTF 80 over a ~110 s run, failures occur
        for seg in run.segments:
            # drawn failures recorded with absolute times, sorted
            times = [t for _, t in seg.drawn_failures]
            assert times == sorted(times)
            assert all(t >= seg.start_time for t in times)

    def test_mttf_and_policy_mutually_exclusive(self):
        with pytest.raises(SimulationError):
            self._driver(mttf=100.0, policy=SingleUniformFailurePolicy(100.0))

    def test_draw_horizon_limits_injections(self):
        policy = ReliabilityInjectionPolicy(ExponentialReliability(mttf=50.0))
        driver = self._driver(policy=policy, seed=1, draw_horizon=5.0, max_restarts=500)
        run = driver.run()
        for seg in run.segments:
            for _, t in seg.drawn_failures:
                assert t < seg.start_time + 5.0
