"""EngineProfiler / ProfileReport unit tests.

Covers the zero-wall guard symmetry (every derived ratio must read as 0.0
rather than raise when its denominator is zero) and the flat-core pool
gauges (slab occupancy, free-list reuse, batch length) the report surfaces.
"""

import pytest

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.checkpoint.store import CheckpointStore
from repro.core.harness import bench
from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim
from repro.util.profiling import EngineProfiler, PhaseStats, ProfileReport


def _zero_report(**overrides):
    base = dict(
        wall_seconds=0.0,
        event_count=0,
        events_per_sec=0.0,
        stale_skipped=0,
        coalesced_advances=0,
        match_scan_calls=0,
        match_scan_length=0,
        phases=(),
    )
    base.update(overrides)
    return ProfileReport(**base)


def _profiled_run(engine: str, nranks: int = 8):
    system = SystemConfig.small_test_system(nranks=nranks)
    wl = HeatConfig.paper_workload(checkpoint_interval=10, nranks=nranks, iterations=30)
    sim = XSim(system, engine=engine)
    with EngineProfiler(sim.engine, world=sim.world) as prof:
        result = sim.run(heat3d, args=(wl, CheckpointStore()))
    assert result.completed
    return prof.report()


class TestZeroWallGuards:
    def test_zero_wall_report_has_no_division_errors(self):
        """A report built before any wall time elapsed must render, not
        raise — every ratio shares the events_per_sec guard."""
        report = _zero_report()
        assert report.events_per_sec == 0.0
        assert report.mean_match_scan == 0.0
        assert report.free_reuse_ratio == 0.0
        record = report.as_record()
        assert record["events_per_sec"] == 0.0
        assert record["mean_match_scan"] == 0.0
        assert record["free_reuse_ratio"] == 0.0
        assert isinstance(report.render(), str)

    def test_profiler_with_frozen_zero_wall(self):
        """EngineProfiler.report() with a zero wall measurement (coarse
        clock) applies the guard instead of dividing."""
        sim = XSim(SystemConfig.small_test_system(nranks=4))
        prof = EngineProfiler(sim.engine)
        prof._wall = 0.0  # freeze before any time elapses
        report = prof.report()
        assert report.wall_seconds == 0.0
        assert report.events_per_sec == 0.0

    def test_free_reuse_ratio_guards_zero_allocs(self):
        assert _zero_report(pool_reuses=0, pool_allocs=0).free_reuse_ratio == 0.0
        assert _zero_report(pool_allocs=4, pool_reuses=3).free_reuse_ratio == 0.75

    def test_bench_rate_guard(self):
        assert bench.rate(1000, 0.0) == 0.0
        assert bench.rate(1000, 2.0) == 500.0


class TestPoolGauges:
    def test_heap_engine_reports_zero_pool_gauges(self):
        report = _profiled_run("heap")
        assert report.pool_allocs == 0
        assert report.pool_peak == 0
        assert report.slab_grows == 0
        assert report.batch_max == 0
        assert report.free_reuse_ratio == 0.0
        assert "pool peak" not in report.render()

    def test_flat_engine_reports_pool_gauges(self):
        report = _profiled_run("flat")
        assert report.pool_allocs > 0
        assert report.pool_peak > 0
        assert report.slab_grows >= 1  # at least the initial slab
        assert report.batch_max >= 1
        assert 0.0 < report.free_reuse_ratio <= 1.0
        assert report.pool_reuses + report.slab_grows >= 1
        rendered = report.render()
        assert "pool peak" in rendered
        assert "free-list reuse" in rendered
        assert "max batch" in rendered

    def test_as_record_carries_pool_gauges(self):
        record = _profiled_run("flat").as_record()
        for key in (
            "pool_allocs",
            "pool_reuses",
            "pool_peak",
            "slab_grows",
            "batch_max",
            "free_reuse_ratio",
        ):
            assert key in record

    def test_flat_and_heap_event_counts_agree(self):
        heap, flat = _profiled_run("heap"), _profiled_run("flat")
        assert heap.event_count == flat.event_count
        assert heap.coalesced_advances == flat.coalesced_advances
        assert heap.stale_skipped == flat.stale_skipped


class TestPhases:
    def test_phase_marks_split_event_counts(self):
        sim = XSim(SystemConfig.small_test_system(nranks=4))
        prof = EngineProfiler(sim.engine)
        wl = HeatConfig.paper_workload(checkpoint_interval=5, nranks=4, iterations=10)
        result = sim.run(heat3d, args=(wl, CheckpointStore()))
        sim.engine.mark_phase("tail")
        report = prof.report()
        assert result.completed
        assert [p.label for p in report.phases] == ["tail"]
        assert isinstance(report.phases[0], PhaseStats)
        assert sum(p.events for p in report.phases) <= report.event_count
