"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint.daly import (
    daly_higher_order_interval,
    daly_simple_interval,
    expected_completion_time,
)
from repro.core.checkpoint.store import CheckpointStore
from repro.core.faults.schedule import FailureSchedule
from repro.models.network.topology import MeshTopology, TorusTopology
from repro.util.stats import summarize
from repro.util.units import format_size, format_time, parse_size

# ----------------------------------------------------------------------
# topologies: hop metric properties
# ----------------------------------------------------------------------
dims_strategy = st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=3).map(tuple)


@given(dims=dims_strategy, data=st.data())
@settings(max_examples=60, deadline=None)
def test_torus_hops_is_a_metric(dims, data):
    t = TorusTopology(dims)
    a = data.draw(st.integers(0, t.nnodes - 1))
    b = data.draw(st.integers(0, t.nnodes - 1))
    c = data.draw(st.integers(0, t.nnodes - 1))
    # identity, symmetry, triangle inequality
    assert t.hops(a, a) == 0
    assert t.hops(a, b) == t.hops(b, a)
    assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)
    assert t.hops(a, b) <= t.diameter()


@given(dims=dims_strategy, data=st.data())
@settings(max_examples=60, deadline=None)
def test_mesh_dominates_torus_distance(dims, data):
    m, t = MeshTopology(dims), TorusTopology(dims)
    a = data.draw(st.integers(0, m.nnodes - 1))
    b = data.draw(st.integers(0, m.nnodes - 1))
    assert m.hops(a, b) >= t.hops(a, b)


@given(dims=dims_strategy, data=st.data())
@settings(max_examples=60, deadline=None)
def test_torus_neighbors_consistent_with_hops(dims, data):
    t = TorusTopology(dims)
    node = data.draw(st.integers(0, t.nnodes - 1))
    for nb in t.neighbors(node):
        assert t.hops(node, nb) == 1


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=200))
@settings(max_examples=100)
def test_summarize_invariants(xs):
    s = summarize(xs)
    assert s.minimum <= s.median <= s.maximum
    assert s.minimum <= s.mean <= s.maximum
    assert s.stddev >= 0
    assert s.count == len(xs)
    assert s.total == sum(xs)
    assert s.mode in xs
    # numpy agreement (population stddev)
    assert math.isclose(s.stddev, float(np.std(xs)), rel_tol=1e-9, abs_tol=1e-9)
    assert math.isclose(s.median, float(np.median(xs)), rel_tol=1e-9, abs_tol=1e-9)


# ----------------------------------------------------------------------
# units
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=10**15))
@settings(max_examples=100)
def test_size_format_is_parseable(n):
    # formatting is lossy (1 decimal) but must parse back within 5 %
    back = parse_size(format_size(n).replace(" ", ""))
    assert back == n or abs(back - n) <= max(64.0, 0.05 * n)


@given(st.floats(min_value=1e-9, max_value=1e6, allow_nan=False))
@settings(max_examples=100)
def test_time_format_roundtrip_within_precision(t):
    text = format_time(t).replace(",", "").replace(" ", "")
    from repro.util.units import parse_time

    # one-decimal formatting rounds by up to 0.05 units of the chosen
    # scale, i.e. up to ~5 % at the bottom of a decade
    assert math.isclose(parse_time(text), t, rel_tol=0.06)


# ----------------------------------------------------------------------
# failure schedule textual format
# ----------------------------------------------------------------------
schedule_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False),
    ),
    max_size=20,
)


@given(schedule_strategy)
@settings(max_examples=100)
def test_failure_schedule_render_parse_roundtrip(pairs):
    # Schedules are canonical: duplicates collapse (merging via extend
    # cannot double-inject) and entries sort by (time, rank), so the
    # round-trip preserves the canonical set, not the raw input list.
    s = FailureSchedule.of(*pairs)
    canonical = sorted({(r, float(t)) for r, t in pairs}, key=lambda p: (p[1], p[0]))
    assert [(e.rank, e.time) for e in s] == canonical
    back = FailureSchedule.parse(s.render())
    assert [(e.rank, e.time) for e in back] == canonical


# ----------------------------------------------------------------------
# multi-kind fault schedules
# ----------------------------------------------------------------------
_time = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
_factor = st.floats(min_value=1.0, max_value=100.0, allow_nan=False, allow_infinity=False)
_window = st.one_of(
    st.just(math.inf),
    st.floats(min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False),
)
_rank = st.integers(min_value=0, max_value=63)


def _entry_strategy():
    from repro.core.faults import (
        CorrelatedFailure,
        LinkDegradeFault,
        ScheduledFailure,
        StragglerFault,
    )

    failstop = st.builds(ScheduledFailure, _rank, _time)
    straggler = st.builds(StragglerFault, _rank, _time, _factor, _window)
    link = st.tuples(_rank, _rank, _time, _factor, _window).filter(
        lambda t: t[0] != t[1]
    ).map(lambda t: LinkDegradeFault(*t))
    corr = st.builds(
        CorrelatedFailure,
        _rank,
        _time,
        st.integers(min_value=0, max_value=4),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    return st.one_of(failstop, straggler, link, corr)


@given(st.lists(_entry_strategy(), max_size=12))
@settings(max_examples=100, deadline=None)
def test_multi_kind_schedule_canonical_fixpoint(entries):
    # Construction canonicalizes (dedupe + stable cross-kind sort); the
    # textual form must round-trip that canonical schedule exactly, and
    # re-parsing its own render must be a fixpoint.
    s = FailureSchedule(list(entries))
    assert s.entries == sorted(set(s.entries), key=lambda e: _canonical_key(e))
    back = FailureSchedule.parse(s.render())
    assert back.entries == s.entries
    assert back.render() == s.render()


def _canonical_key(entry):
    from repro.core.faults.schedule import _sort_key

    return _sort_key(entry)


# ----------------------------------------------------------------------
# correlated expansion == hop ball
# ----------------------------------------------------------------------
@given(
    dims=dims_strategy,
    ranks_per_node=st.integers(min_value=1, max_value=2),
    radius=st.integers(min_value=0, max_value=3),
    spread=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_correlated_expansion_is_exact_hop_ball(dims, ranks_per_node, radius, spread, data):
    from repro.core.faults import CorrelatedFailure, expand_correlated
    from repro.models.network.model import NetworkModel

    net = NetworkModel(TorusTopology(dims), ranks_per_node=ranks_per_node)
    nranks = net.topology.nnodes * ranks_per_node
    seed = data.draw(st.integers(0, nranks - 1))
    fault = CorrelatedFailure(seed, 50.0, radius, spread=spread)
    expanded = expand_correlated(fault, net, nranks)
    # sorted by rank, seed included, and exactly the <= radius hop ball
    assert [r for r, _ in expanded] == sorted(r for r, _ in expanded)
    assert dict(expanded).get(seed) == 50.0
    for rank in range(nranks):
        hops = net.hops(seed, rank)
        if hops <= radius:
            assert dict(expanded)[rank] == 50.0 + hops * spread
        else:
            assert rank not in dict(expanded)


# ----------------------------------------------------------------------
# adaptive explorer: spend is monotone in the CI target
# ----------------------------------------------------------------------
@given(
    widths=st.tuples(
        st.floats(min_value=0.08, max_value=0.45),
        st.floats(min_value=0.08, max_value=0.45),
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=20, deadline=None)
def test_explorer_spend_monotone_in_ci_target(widths, seed):
    from unittest import mock

    from repro.explore import ExploreSpec, run_explore
    from repro.run.scenario import Scenario

    def fake_run_cells(scenarios, jobs=1, cache=None, key_prefix="cells"):
        out = []
        for s in scenarios:
            if not s.failures:
                out.append({"completed": True, "exit_time": 100.0,
                            "result_digest": "base", "mode": "single"})
            else:
                h = hash((seed, s.failures)) % 1000 / 1000.0
                out.append({"completed": True, "exit_time": 100.0 * (1.0 + h),
                            "e2": 100.0 * (1.0 + h), "result_digest": f"d{h}",
                            "mode": "restart", "mttf_a": 50.0})
        return out

    loose_w, tight_w = max(widths), min(widths)
    base = ExploreSpec(
        scenario=Scenario(ranks=8, app="heat3d", iterations=10),
        rank_bins=2, time_bins=2, min_samples=2, batch=8,
        max_cells=300, impact_threshold=0.5, seed=seed % 97,
    )
    with mock.patch("repro.explore.sampler.run_cells", fake_run_cells):
        loose = run_explore(base.with_(ci_width=loose_w))
        tight = run_explore(base.with_(ci_width=tight_w))
    # The allocation policy never reads the stopping target, so a looser
    # target can only stop earlier, along the identical trajectory.
    assert loose.spent <= tight.spent
    assert loose.batches == tight.batches[: len(loose.batches)]


# ----------------------------------------------------------------------
# Daly formulas
# ----------------------------------------------------------------------
@given(
    delta=st.floats(min_value=0.1, max_value=100.0),
    mttf=st.floats(min_value=200.0, max_value=1e6),
)
@settings(max_examples=100)
def test_daly_interval_positive_and_ordered(delta, mttf):
    simple = daly_simple_interval(delta, mttf)
    higher = daly_higher_order_interval(delta, mttf)
    assert simple > 0
    assert higher > 0
    # the higher-order correction matters most when delta/M is large, but
    # stays within a factor of 2 of the first-order optimum in this range
    assert 0.5 < higher / simple < 2.0


@given(
    work=st.floats(min_value=100.0, max_value=1e5),
    tau=st.floats(min_value=1.0, max_value=1e3),
    delta=st.floats(min_value=0.1, max_value=50.0),
    mttf=st.floats(min_value=100.0, max_value=1e6),
)
@settings(max_examples=100)
def test_expected_completion_never_beats_raw_work(work, tau, delta, mttf):
    t = expected_completion_time(work, min(tau, work), delta, mttf)
    assert t > work * 0.999


# ----------------------------------------------------------------------
# checkpoint store: random operation sequences keep invariants
# ----------------------------------------------------------------------
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["begin", "commit", "delete_file", "delete_set", "cleanup"]),
        st.integers(min_value=0, max_value=4),  # ckpt id
        st.integers(min_value=0, max_value=3),  # rank
    ),
    max_size=60,
)


@given(ops_strategy)
@settings(max_examples=100)
def test_store_invariants_under_random_ops(ops):
    from repro.util.errors import CheckpointError

    store = CheckpointStore()
    nranks = 4
    for op, cid, rank in ops:
        if op == "begin":
            store.begin_write(cid, rank, {"cid": cid}, 8)
        elif op == "commit":
            try:
                store.commit_write(cid, rank)
            except CheckpointError:
                pass  # committing a never-begun file is an app error
        elif op == "delete_file":
            store.delete(cid, rank)
        elif op == "delete_set":
            store.delete(cid)
        elif op == "cleanup":
            store.cleanup_incomplete(nranks)
    # invariant: whatever happened, latest_valid returns a fully valid set
    latest = store.latest_valid(nranks)
    if latest is not None:
        assert store.is_valid(latest, nranks)
        for r in range(nranks):
            assert store.read(latest, r).data == {"cid": latest}
    # and after the shell-script step only valid sets remain
    store.cleanup_incomplete(nranks)
    for cid in store.checkpoint_ids():
        assert store.is_valid(cid, nranks)


# ----------------------------------------------------------------------
# engine: random compute/communicate apps terminate deterministically
# ----------------------------------------------------------------------
@given(
    durations=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=1, max_size=6
    ),
    failure_time=st.one_of(st.none(), st.floats(min_value=0.0, max_value=20.0)),
)
@settings(max_examples=60, deadline=None)
def test_engine_clocks_monotone_and_deterministic(durations, failure_time):
    from repro.pdes.engine import Engine
    from repro.pdes.requests import Advance

    def build():
        eng = Engine()

        def worker(ds):
            for d in ds:
                yield Advance(d)

        for i in range(len(durations)):
            eng.spawn(worker(durations[i:] + durations[:i]))
        if failure_time is not None:
            eng.schedule_failure(0, failure_time)
        return eng.run()

    r1, r2 = build(), build()
    assert r1.end_times == r2.end_times
    assert r1.failures == r2.failures
    total = sum(durations)
    for rank, end in r1.end_times.items():
        assert 0.0 <= end <= total + 1e-9
        if r1.states[rank].value == "done":
            assert math.isclose(end, total, rel_tol=1e-9, abs_tol=1e-12)
    if failure_time is not None and r1.failures:
        # activation at-or-after the scheduled time
        assert r1.failures[0][1] >= failure_time - 1e-12
