"""redMPI-style redundant execution with online SDC detection."""

import numpy as np
import pytest

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.harness.config import SystemConfig
from repro.core.redundancy import (
    HASH_NBYTES,
    RedundancyMonitor,
    RedundantApi,
    payload_hash,
    redundant,
)
from repro.core.simulator import XSim
from repro.util.errors import ConfigurationError
from tests.conftest import run_app


def pingpong(mpi):
    yield from mpi.init()
    got = None
    if mpi.rank == 0:
        yield from mpi.send(1, payload=np.arange(4.0), tag=1)
    else:
        got = yield from mpi.recv(0, tag=1)
    yield from mpi.finalize()
    return None if got is None else float(got.sum())


class TestPayloadHash:
    def test_deterministic(self):
        a = np.arange(10.0)
        assert payload_hash(a) == payload_hash(a.copy())

    def test_sensitive_to_single_bit(self):
        a = np.arange(10.0)
        b = a.copy()
        b.view(np.uint8)[3] ^= 1
        assert payload_hash(a) != payload_hash(b)

    def test_modeled_payload_constant(self):
        assert payload_hash(None) == 0

    def test_generic_objects(self):
        assert payload_hash({"x": 1}) == payload_hash({"x": 1})
        assert payload_hash({"x": 1}) != payload_hash({"x": 2})


class TestRedundantExecution:
    def _run(self, app, logical, factor, failures=None, seed=0, flip=None):
        monitor = RedundancyMonitor(factor=factor)
        system = SystemConfig.small_test_system(nranks=logical * factor)
        sim = XSim(system, seed=seed)
        for rank, time in failures or []:
            sim.inject_failure(rank, time)
        if flip is not None:
            sim.soft_errors.schedule_flip(*flip)
        result = sim.run(redundant(app, factor, monitor))
        return monitor, result, sim

    def test_factor1_is_plain_execution(self):
        monitor, result, _ = self._run(pingpong, logical=2, factor=1)
        assert result.completed
        assert result.exit_values[1] == 6.0
        assert monitor.messages_compared == 0

    def test_replicas_all_compute_the_answer(self):
        monitor, result, _ = self._run(pingpong, logical=2, factor=2)
        assert result.completed
        # logical rank 1 exists twice: world ranks 1 and 3
        assert result.exit_values[1] == 6.0
        assert result.exit_values[3] == 6.0
        assert monitor.messages_compared == 2  # one per receiving replica
        assert monitor.clean

    def test_triple_redundancy(self):
        monitor, result, _ = self._run(pingpong, logical=2, factor=3)
        assert result.completed
        assert {result.exit_values[r] for r in (1, 3, 5)} == {6.0}
        assert monitor.messages_compared == 3

    def test_hash_traffic_overhead_modeled(self):
        """Redundancy costs real (simulated) message traffic."""
        _, _, plain = self._run(pingpong, logical=2, factor=1)
        _, _, double = self._run(pingpong, logical=2, factor=2)
        # factor 2: payload x2 replicas + 2 hash messages (+ finalize x2)
        assert double.world.messages_sent > 2 * plain.world.messages_sent
        assert double.world.bytes_sent >= 2 * plain.world.bytes_sent + 2 * HASH_NBYTES

    def test_sdc_detected_by_hash_comparison(self):
        """A bit flip in one replica's data diverges its outgoing payload;
        the receiving replica's watcher hash catches it."""

        def app(mpi):
            yield from mpi.init()
            data = np.arange(8.0)
            mpi.malloc("buf", array=data)
            yield from mpi.compute(1.0)  # flip lands here (world rank 2)
            got = None
            if mpi.rank == 0:
                yield from mpi.send(1, payload=data, tag=1)
            else:
                got = yield from mpi.recv(0, tag=1)
            yield from mpi.finalize()
            return None if got is None else float(got.sum())

        # world rank 2 = replica 1 of logical rank 0 (the sender)
        monitor, result, _ = self._run(app, logical=2, factor=2, flip=(2, 0.5))
        assert result.completed
        assert not monitor.clean
        det = monitor.detections[0]
        assert det.logical_src == 0
        assert det.logical_dst == 1
        assert det.tag == 1
        # BOTH receiving replicas see the divergence: replica 1 got the
        # corrupted payload with a clean watcher hash, replica 0 got the
        # clean payload with the corrupted sender's hash
        assert len(monitor.detections) == 2
        assert {d.replica for d in monitor.detections} == {0, 1}

    def test_clean_run_detects_nothing(self):
        monitor, result, _ = self._run(pingpong, logical=2, factor=2)
        assert monitor.clean

    def test_replica_failure_aborts_job(self):
        """redMPI without recovery: a dead replica still fails the job
        through the ordinary detection machinery."""
        monitor, result, _ = self._run(pingpong, logical=2, factor=2, failures=[(3, 0.0)])
        assert result.aborted

    def test_heat3d_runs_under_redundancy(self):
        cfg = HeatConfig(
            grid=(8, 8, 8),
            ranks=(2, 2, 2),
            iterations=4,
            checkpoint_interval=2,
            exchange_interval=1,
            data_mode="real",
        )
        monitor = RedundancyMonitor(factor=2)
        system = SystemConfig.small_test_system(nranks=16)
        sim = XSim(system)
        result = sim.run(redundant(heat3d, 2, monitor), args=(cfg, None))
        assert result.completed
        assert monitor.clean
        assert monitor.messages_compared > 0
        # both replica sets produce the identical checksum
        sums = {}
        for rank, stats in result.exit_values.items():
            sums.setdefault(rank % 8, set()).add(stats.checksum)
        assert all(len(s) == 1 for s in sums.values())

    def test_heat3d_redundancy_catches_injected_flip(self):
        cfg = HeatConfig(
            grid=(8, 8, 8),
            ranks=(2, 2, 2),
            iterations=4,
            checkpoint_interval=4,
            exchange_interval=1,
            data_mode="real",
            native_seconds_per_point=1e-3,
        )
        monitor = RedundancyMonitor(factor=2)
        system = SystemConfig.small_test_system(nranks=16)
        sim = XSim(system, seed=9)
        # keep flipping bits in replica-1 copies until detection triggers:
        # a single flip may land in an unread ghost byte, so inject several
        for i in range(6):
            sim.soft_errors.schedule_flip(rank=8 + (i % 8), time=0.05 + 0.02 * i)
        result = sim.run(redundant(heat3d, 2, monitor), args=(cfg, None))
        assert result.completed
        assert not monitor.clean  # divergence detected online

    def test_unsupported_features_rejected(self):
        """Wildcard receives are a configuration (host) error, which
        crashes the simulation rather than being masked."""

        def bad_any_source(mpi):
            yield from mpi.init()
            mpi.irecv(-1, tag=0)  # ANY_SOURCE
            yield from mpi.finalize()

        with pytest.raises(ConfigurationError):
            self._run(bad_any_source, logical=2, factor=2)

    def test_factor_must_divide_world(self):
        monitor = RedundancyMonitor(factor=3)
        with pytest.raises(ConfigurationError):
            run_app(redundant(pingpong, 3, monitor), nranks=4)

    def test_api_validation(self):
        with pytest.raises(ConfigurationError):
            RedundantApi.__new__(RedundantApi).__init__(None, 0, None)  # type: ignore[arg-type]
