"""Report rendering details and experiment-record consistency."""

import pytest

from repro.core.harness.experiment import PAPER_TABLE2, Table2Cell
from repro.core.harness.report import format_table, render_table2
from repro.core.harness.serialize import table2_records, to_csv


def cells_from_paper():
    """Cells carrying exactly the paper's values (identity reproduction)."""
    out = []
    for (mttf, interval), (e1, e2, f, mttf_a) in sorted(
        PAPER_TABLE2.items(), key=lambda kv: (kv[0][0] is not None, kv[0])
    ):
        out.append(Table2Cell(mttf, interval, e1, e2, f, mttf_a))
    return out


class TestRenderTable2:
    def test_all_paper_rows_render(self):
        out = render_table2(cells_from_paper())
        assert out.count("\n") == 8  # header + separator + 7 rows
        assert "10,584 s" in out
        assert "paper MTTF_a" in out

    def test_identity_cells_match_their_paper_columns(self):
        out = render_table2(cells_from_paper())
        for line in out.splitlines()[2:]:
            cols = [c.strip() for c in line.split("|")]
            # measured E1/E2 equal the paper columns for identity cells
            assert cols[2] == cols[6]
            assert cols[3] == cols[7]

    def test_unknown_row_marked(self):
        out = render_table2([Table2Cell(1234.0, 77, 1.0, 2.0, 1, 1.0)])
        assert "?" in out


class TestRecordsCsv:
    def test_csv_of_paper_table(self):
        csv = to_csv(table2_records(cells_from_paper()))
        lines = csv.strip().splitlines()
        assert len(lines) == 8
        assert lines[0].startswith("e1,e2,f,interval")

    def test_record_count_matches(self):
        recs = table2_records(cells_from_paper())
        assert len(recs) == 7
        assert all("paper_e1" in r for r in recs)


class TestFormatTableEdges:
    def test_single_column(self):
        out = format_table(["only"], [["a"], ["bb"]])
        assert out.splitlines()[0].strip() == "only"

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert len(out.splitlines()) == 2  # header + separator

    def test_wide_cells_stretch_columns(self):
        out = format_table(["x"], [["extremely-wide-cell-content"]])
        assert "extremely-wide-cell-content" in out
