"""Pluggable resilience strategies, head-to-head through every layer.

The strategy registry (``repro.resilience``) must behave like any other
scenario axis: selectable by name, validated eagerly, folded into the
scenario digest, bit-identical across serial and sharded backends, and
with recovery semantics that match the mechanism — replication absorbs
fail-stops with zero restart segments, multi-level checkpointing
recovers at measurably lower E2 than single-level, ``none`` restarts
from scratch.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.restart import RestartDriver
from repro.resilience import STRATEGIES, make_strategy, strategy_names
from repro.run.backends import run_scenario
from repro.run.scenario import APP_NAMES, Scenario
from repro.run.sweep import parse_set, run_sweep
from repro.util.errors import ConfigurationError

RANKS = 4
ITERATIONS = 40
INTERVAL = 10
FAILURE = "1@120s"

ALL = ("ckpt", "ckpt-multilevel", "replication", "none")


def scenario_for(strategy: str, app: str = "heat3d", **overrides) -> Scenario:
    kwargs = dict(
        app=app,
        ranks=RANKS,
        iterations=ITERATIONS,
        interval=INTERVAL,
        failures=FAILURE,
        strategy=strategy,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


@pytest.fixture(scope="module")
def faulty_summaries():
    """One failure/restart run per strategy, computed once."""
    return {s: run_scenario(scenario_for(s)).summary() for s in ALL}


# ----------------------------------------------------------------------
# registry & scenario plumbing
# ----------------------------------------------------------------------
class TestRegistry:
    def test_registry_contents(self):
        assert strategy_names() == tuple(sorted(STRATEGIES))
        assert set(ALL) <= set(strategy_names())

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown resilience strategy"):
            Scenario(strategy="raid5")

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError, match="parameter"):
            Scenario(strategy="ckpt-multilevel", strategy_params=(("tiers", 3),))

    def test_interval_validated(self):
        with pytest.raises(ConfigurationError, match="interval"):
            Scenario(interval=0)

    def test_replication_needs_two_replicas(self):
        with pytest.raises(ConfigurationError):
            Scenario(strategy="replication", strategy_params=(("factor", 1),))

    def test_strategy_in_scenario_digest(self):
        digests = {scenario_for(s).scenario_digest() for s in ALL}
        assert len(digests) == len(ALL)

    def test_toml_subtable_round_trip(self):
        s = Scenario.from_toml(
            "[machine]\nranks = 4\n\n[resilience]\n"
            'strategy = {name = "ckpt-multilevel", k = 2}\n'
        )
        assert s.strategy == "ckpt-multilevel"
        assert s.strategy_params == (("k", 2),)
        back = Scenario.from_toml(s.to_toml())
        assert back == s

    def test_toml_subtable_needs_name(self):
        with pytest.raises(ConfigurationError, match="name"):
            Scenario.from_toml("[resilience]\nstrategy = {k = 2}\n")

    def test_physical_ranks(self):
        assert make_strategy(scenario_for("replication")).physical_ranks(4) == 8
        assert make_strategy(scenario_for("ckpt")).physical_ranks(4) == 4

    def test_env_var_reads_strategy(self):
        from repro.run.envvars import read_environment

        assert read_environment({"XSIM_STRATEGY": "replication"}) == {
            "strategy": "replication"
        }
        with pytest.raises(ConfigurationError, match="XSIM_STRATEGY"):
            read_environment({"XSIM_STRATEGY": "raid5"})

    def test_strategy_params_not_sweepable(self):
        with pytest.raises(ConfigurationError, match="strategy_params"):
            parse_set("strategy_params=1,2")

    def test_strategy_is_sweepable(self):
        name, values = parse_set("strategy=ckpt,none")
        assert name == "strategy" and values == ["ckpt", "none"]


# ----------------------------------------------------------------------
# recovery semantics (the acceptance criteria)
# ----------------------------------------------------------------------
class TestRecoverySemantics:
    def test_all_strategies_complete(self, faulty_summaries):
        for name, summary in faulty_summaries.items():
            assert summary["completed"], name
            assert summary["strategy"] == name
            assert summary["strategy_facts"]["strategy"] == name

    def test_replication_zero_restart_segments(self, faulty_summaries):
        rep = faulty_summaries["replication"]
        assert rep["restarts"] == 0
        assert rep["failures"] == 0  # absorbed, never activated
        assert rep["strategy_facts"]["failovers"] == 1
        assert rep["strategy_facts"]["fatal"] == 0

    def test_multilevel_beats_single_level_e2(self, faulty_summaries):
        assert faulty_summaries["ckpt-multilevel"]["e2"] < faulty_summaries["ckpt"]["e2"]
        assert faulty_summaries["ckpt-multilevel"]["strategy_facts"]["dropped_files"] > 0

    def test_none_restarts_from_scratch(self, faulty_summaries):
        # With no checkpoints the restarted segment replays everything:
        # E2 is the worst of the four.
        worst = max(s["e2"] for s in faulty_summaries.values())
        assert faulty_summaries["none"]["e2"] == worst
        assert faulty_summaries["none"]["restarts"] == 1

    def test_failover_costs_time(self):
        fault_free = run_scenario(
            scenario_for("replication", failures="")
        ).summary()
        faulty = run_scenario(scenario_for("replication")).summary()
        assert faulty["e2"] > fault_free["exit_time"]

    def test_replication_fatal_when_all_replicas_hit(self):
        # Both replicas of logical rank 1 (world ranks 1 and 5 at
        # factor 2 over 4 logical ranks): the second hit is unmasked.
        s = scenario_for("replication", failures="1@120s,5@130s")
        out = run_scenario(s).summary()
        assert out["completed"]
        assert out["restarts"] == 1
        facts = out["strategy_facts"]
        assert facts["failovers"] == 1 and facts["fatal"] == 1

    def test_monitor_carried_across_restart_segments(self):
        # The SDC monitor must accumulate across a fatal-failure restart
        # rather than being recreated per segment.
        driver = RestartDriver.from_scenario(
            scenario_for("replication", failures="1@120s,5@130s")
        )
        result = driver.run()
        assert result.completed and len(result.segments) == 2
        compared = driver.strategy.monitor.messages_compared
        fault_free = RestartDriver.from_scenario(
            scenario_for("replication", failures="")
        )
        fault_free.run()
        # Two segments compare strictly more messages than one clean run.
        assert compared > fault_free.strategy.monitor.messages_compared


# ----------------------------------------------------------------------
# serial vs sharded parity, per strategy
# ----------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("strategy", ALL)
    def test_serial_vs_inline_shards(self, strategy, faulty_summaries):
        sharded = run_scenario(
            scenario_for(strategy, backend="sharded-inline", shards=2)
        ).summary()
        assert sharded["result_digest"] == faulty_summaries[strategy]["result_digest"]

    @pytest.mark.parametrize("strategy", ALL)
    def test_serial_vs_shm_shards(self, strategy, faulty_summaries):
        # Bypasses the CLI's CPU cap: the driver accepts the shard spec
        # directly, so this exercises real shm workers on any host.
        driver = RestartDriver.from_scenario(
            scenario_for(strategy), shards=2, shard_transport="shm"
        )
        result = driver.run()
        from repro.core.harness.experiment import campaign_digest, result_digest

        assert result.completed
        assert (
            campaign_digest([result_digest(s.result) for s in result.segments])
            == faulty_summaries[strategy]["result_digest"]
        )

    @given(
        strategy=st.sampled_from(ALL),
        app=st.sampled_from(("heat3d", "cg", "amr")),
        seed=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=10, deadline=None)
    def test_fault_free_digest_deterministic(self, strategy, app, seed):
        """Property: a fault-free run's digest is a pure function of the
        scenario — repeated runs and inline sharding never perturb it."""
        s = Scenario(
            app=app, ranks=4, iterations=20, interval=10,
            strategy=strategy, seed=seed,
        )
        first = run_scenario(s).summary()["result_digest"]
        again = run_scenario(s).summary()["result_digest"]
        sharded = run_scenario(
            s.with_(backend="sharded-inline", shards=2)
        ).summary()["result_digest"]
        assert first == again == sharded


# ----------------------------------------------------------------------
# the AMR workload
# ----------------------------------------------------------------------
class TestAmr:
    def test_registered(self):
        assert "amr" in APP_NAMES

    def test_config_validation(self):
        from repro.apps.amr import AmrConfig

        with pytest.raises(ConfigurationError):
            AmrConfig(refine_factor=0)
        with pytest.raises(ConfigurationError):
            AmrConfig(regrid_interval=0)

    def test_load_is_imbalanced_and_moving(self):
        from repro.apps.amr import AmrConfig

        cfg = AmrConfig(nranks=8)
        # The front boosts ranks near its centre and leaves the rest at
        # the base load.
        loads0 = [cfg.cells_at(r, 0) for r in range(8)]
        assert loads0[0] == max(loads0) > cfg.base_cells
        assert min(loads0) == cfg.base_cells
        # ... and it moves: a later epoch has a different profile.
        later = [cfg.cells_at(r, 5 * cfg.regrid_interval) for r in range(8)]
        assert later != loads0 and later[5] == max(later)

    def test_completes_and_restarts(self):
        clean = run_scenario(scenario_for("ckpt", app="amr", failures="")).summary()
        faulty = run_scenario(scenario_for("ckpt", app="amr")).summary()
        assert clean["completed"] and faulty["completed"]
        assert faulty["restarts"] == 1
        assert faulty["e2"] > clean["exit_time"]

    @pytest.mark.parametrize("strategy", ALL)
    def test_per_strategy_parity(self, strategy):
        serial = run_scenario(scenario_for(strategy, app="amr")).summary()
        sharded = run_scenario(
            scenario_for(strategy, app="amr", backend="sharded-inline", shards=2)
        ).summary()
        assert serial["completed"]
        assert serial["result_digest"] == sharded["result_digest"]


# ----------------------------------------------------------------------
# the head-to-head study table
# ----------------------------------------------------------------------
class TestStudy:
    def test_render_is_deterministic_and_ordered(self):
        from repro.resilience.study import render_strategy_study

        base = scenario_for("ckpt")
        pairs = run_sweep(base, {"strategy": list(ALL)})
        text = render_strategy_study(pairs, axes=("strategy",))
        again = render_strategy_study(
            run_sweep(base, {"strategy": list(ALL)}), axes=("strategy",)
        )
        assert text == again
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "strategy"
        body = [l.split("|")[0].strip() for l in lines[2:]]
        assert body == list(ALL)

    def test_overhead_is_relative_to_none(self):
        from repro.resilience.study import strategy_study_rows

        pairs = run_sweep(scenario_for("ckpt"), {"strategy": ["none"]})
        header, rows = strategy_study_rows(pairs, axes=("strategy",))
        overhead = rows[0][header.index("overhead")]
        assert overhead == "+0.0%"

    def test_sweep_cli_appends_study_table(self, capsys):
        from repro.cli import main

        assert main([
            "sweep", "--app", "heat3d", "--ranks", "4", "--iterations", "20",
            "--interval", "10", "--xsim-failures", "1@40s",
            "--set", "strategy=ckpt,none",
        ]) == 0
        out = capsys.readouterr().out
        assert "strategy head-to-head" in out
        assert "overhead" in out and "E2/E1" in out


# ----------------------------------------------------------------------
# explore integration
# ----------------------------------------------------------------------
class TestExploreStrategies:
    def test_unknown_strategy_rejected(self):
        from repro.explore import ExploreSpec

        with pytest.raises(ConfigurationError, match="unknown explore strategy"):
            ExploreSpec(strategies=("raid5",))

    def test_rollup_runs_one_campaign_per_strategy(self):
        from repro.explore import ExploreSpec, StrategyExploreResult, run_explore
        from repro.explore.report import render_scorecard, scorecard_json

        spec = ExploreSpec(
            scenario=Scenario(app="heat3d", ranks=4, iterations=20, interval=10),
            kinds=("failstop",),
            rank_bins=1,
            time_bins=1,
            min_samples=2,
            batch=2,
            max_cells=2,
            strategies=("ckpt", "none"),
        )
        result = run_explore(spec)
        assert isinstance(result, StrategyExploreResult)
        assert [name for name, _ in result.results] == ["ckpt", "none"]
        assert result.spent == sum(r.spent for _, r in result.results)
        # Identical draws: the sampled fault schedules match per campaign.
        text = render_scorecard(result)
        assert "strategy head-to-head" in text
        assert scorecard_json(result) == scorecard_json(result)
