"""The restart driver: continuous virtual time, E2/F/MTTF_a accounting."""

import pytest

from repro.apps.naive_cr import NaiveCrConfig, naive_cr
from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig
from repro.core.restart import RestartDriver
from repro.util.errors import SimulationError


def make_driver(schedule=None, mttf=None, seed=0, nranks=4, cfg=None, max_restarts=1000):
    system = SystemConfig.small_test_system(nranks=nranks)
    cfg = cfg or NaiveCrConfig(work=100.0, tau=10.0, delta=1.0)
    return RestartDriver(
        system,
        naive_cr,
        make_args=lambda store: (cfg, store),
        schedule=schedule,
        mttf=mttf,
        seed=seed,
        max_restarts=max_restarts,
    )


class TestNoFailures:
    def test_completes_in_one_segment(self):
        run = make_driver().run()
        assert run.completed
        assert run.restarts == 0
        assert run.f == 0
        assert run.mttf_a is None
        # 10 segments of 10 s work + 1 s checkpoint each
        assert run.e2 == pytest.approx(110.0, rel=0.01)

    def test_exit_values_from_final_segment(self):
        run = make_driver().run()
        assert set(run.exit_values.values()) == {10}  # all segments done


class TestWithScheduledFailure:
    def test_one_failure_one_restart(self):
        run = make_driver(schedule=FailureSchedule.of((2, 55.0))).run()
        assert run.completed
        assert run.restarts == 1
        assert run.f == 1
        assert len(run.failures) == 1
        assert run.failures[0][0] == 2

    def test_virtual_time_continuous_across_restart(self):
        """Paper §IV-E: the restarted run's clocks start at the previous
        run's simulated exit time."""
        run = make_driver(schedule=FailureSchedule.of((2, 55.0))).run()
        first, second = run.segments
        assert second.start_time == first.result.exit_time
        assert second.result.start_time == second.start_time
        assert run.e2 > 110.0  # lost work was really paid for

    def test_lost_work_bounded_by_checkpoint_interval(self):
        """Restart resumes from the last checkpoint, so E2 exceeds E1 by
        at most (lost segment + detection/abort overhead)."""
        run = make_driver(schedule=FailureSchedule.of((2, 55.0))).run()
        # failed at ~55 (mid segment 6); last checkpoint at 55 -> segment 5.
        # E2 = E1 + rework of <= 1 segment + detection timeout (1 s)
        assert run.e2 == pytest.approx(110.0 + 11.0, abs=5.0)

    def test_mttf_a_relation(self):
        """MTTF_a = E2 / (F + 1): the exact relation Table II satisfies."""
        run = make_driver(schedule=FailureSchedule.of((2, 55.0))).run()
        assert run.mttf_a == pytest.approx(run.e2 / (run.f + 1))


class TestWithMttfPolicy:
    def test_draws_are_deterministic_per_seed(self):
        r1 = make_driver(mttf=100.0, seed=3).run()
        r2 = make_driver(mttf=100.0, seed=3).run()
        assert r1.e2 == r2.e2
        assert r1.f == r2.f
        assert [s.drawn_failure for s in r1.segments] == [
            s.drawn_failure for s in r2.segments
        ]

    def test_different_seeds_differ(self):
        outcomes = {make_driver(mttf=100.0, seed=s).run().f for s in range(6)}
        assert len(outcomes) > 1

    def test_draw_recorded_per_segment(self):
        run = make_driver(mttf=100.0, seed=3).run()
        for seg in run.segments:
            assert seg.drawn_failure is not None
            rank, t = seg.drawn_failure
            assert 0 <= rank < 4
            assert seg.start_time <= t < seg.start_time + 200.0

    def test_f_counts_only_activated_failures(self):
        """A drawn failure beyond the run's end never activates (that is
        how the paper's F column can be smaller than the segment count)."""
        run = make_driver(mttf=1e6, seed=0).run()  # draw far beyond E1
        assert run.f == 0
        assert run.segments[0].drawn_failure is not None

    def test_eventually_completes_under_high_failure_rate(self):
        cfg = NaiveCrConfig(work=50.0, tau=5.0, delta=0.5)
        run = make_driver(mttf=40.0, seed=1, cfg=cfg).run()
        assert run.completed
        assert run.e2 >= 55.0


class TestGuards:
    def test_max_restarts_exceeded(self):
        # work can never finish: failure rate so high a segment never ends
        cfg = NaiveCrConfig(work=100.0, tau=100.0, delta=0.1)  # ckpt only at end
        driver = make_driver(mttf=5.0, seed=2, cfg=cfg, max_restarts=3)
        with pytest.raises(SimulationError):
            driver.run()
