"""Deterministic named RNG streams (repro.util.rng)."""

import pytest

from repro.util.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(42).get("x")
        b = RngStreams(42).get("x")
        assert [float(a.random()) for _ in range(5)] == [float(b.random()) for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("x")
        b = RngStreams(2).get("x")
        assert float(a.random()) != float(b.random())

    def test_streams_are_independent_by_name(self):
        s = RngStreams(7)
        a = [float(s.get("alpha").random()) for _ in range(3)]
        b = [float(s.get("beta").random()) for _ in range(3)]
        assert a != b

    def test_new_stream_does_not_perturb_existing(self):
        s1 = RngStreams(5)
        first = float(s1.get("failures").random())
        s2 = RngStreams(5)
        s2.get("unrelated-extra-stream").random()  # extra consumer
        assert float(s2.get("failures").random()) == first

    def test_get_returns_same_object(self):
        s = RngStreams(0)
        assert s.get("a") is s.get("a")

    def test_get_keeps_position(self):
        s = RngStreams(0)
        v1 = float(s.get("a").random())
        v2 = float(s.get("a").random())
        assert v1 != v2  # position advanced, not rewound

    def test_fresh_rewinds(self):
        s = RngStreams(9)
        v1 = float(s.get("a").random())
        float(s.get("a").random())
        v3 = float(s.fresh("a").random())
        assert v3 == v1

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngStreams("abc")  # type: ignore[arg-type]

    def test_bool_seed_allowed_as_int(self):
        # bools are ints in Python; document the behaviour
        assert RngStreams(True).seed is True
