"""The distributed sample-sort application."""

import numpy as np
import pytest

from repro.apps.samplesort import SampleSortConfig, SampleSortResult, local_block, samplesort
from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim
from repro.util.errors import ConfigurationError
from tests.conftest import run_app


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SampleSortConfig(keys_per_rank=0)
        with pytest.raises(ConfigurationError):
            SampleSortConfig(data_mode="psychic")

    def test_local_block_deterministic(self):
        cfg = SampleSortConfig(keys_per_rank=100)
        assert np.array_equal(local_block(cfg, 3), local_block(cfg, 3))
        assert not np.array_equal(local_block(cfg, 3), local_block(cfg, 4))


class TestRealSort:
    def _run(self, nranks=6, keys=500, seed=7):
        cfg = SampleSortConfig(keys_per_rank=keys, data_mode="real", seed=seed)
        run = run_app(samplesort, nranks=nranks, args=(cfg,))
        assert run.result.completed
        return cfg, run.result.exit_values

    def test_globally_sorted(self):
        cfg, results = self._run()
        # per-rank slices are internally handled; check global ordering:
        # max of rank r <= min of rank r+1
        for r in range(len(results) - 1):
            a, b = results[r], results[r + 1]
            if a.count and b.count:
                assert a.local_max <= b.local_min

    def test_no_keys_lost(self):
        cfg, results = self._run()
        nranks = len(results)
        total = sum(r.count for r in results.values())
        assert total == nranks * cfg.keys_per_rank
        # checksums add up to the input sum
        expected = sum(float(local_block(cfg, r).sum()) for r in range(nranks))
        measured = sum(r.checksum for r in results.values())
        assert measured == pytest.approx(expected, rel=1e-12)

    def test_matches_numpy_reference(self):
        cfg, results = self._run(nranks=4, keys=200)
        # reconstruct boundaries and compare against np.sort of all input
        all_input = np.sort(np.concatenate([local_block(cfg, r) for r in range(4)]))
        mins = [results[r].local_min for r in range(4) if results[r].count]
        assert mins == sorted(mins)
        assert results[0].local_min == pytest.approx(float(all_input[0]))
        last = max(r for r in results if results[r].count)
        assert results[last].local_max == pytest.approx(float(all_input[-1]))

    def test_single_rank(self):
        cfg, results = self._run(nranks=1, keys=64)
        assert results[0].count == 64


class TestModeledSort:
    def test_runs_and_costs_time(self):
        cfg = SampleSortConfig(keys_per_rank=4096, data_mode="modeled")
        system = SystemConfig.paper_system(nranks=8)
        sim = XSim(system, record_trace=True)
        result = sim.run(samplesort, args=(cfg,))
        assert result.completed
        out = result.exit_values[0]
        assert isinstance(out, SampleSortResult)
        assert out.checksum is None
        # sort + merge dominate virtual time (49k ops x 0.1 us x 1000)
        assert result.exit_time > 1.0
        # the exchange really was all-to-all: every ordered pair appears
        pt2pt = sim.world.trace.messages(ctx=3)  # collective context
        pairs = {(m.src, m.dst) for m in pt2pt}
        assert len(pairs) >= 8 * 7  # gather/bcast/alltoall cover all pairs

    def test_failure_aborts_sort(self):
        cfg = SampleSortConfig(keys_per_rank=4096, data_mode="modeled")
        system = SystemConfig.paper_system(nranks=8)
        sim = XSim(system)
        sim.inject_failure(3, 0.5)
        result = sim.run(samplesort, args=(cfg,))
        assert result.aborted


class TestVariableVolumes:
    def test_alltoallv_sizes_vary(self):
        """Skewed input -> skewed partitions -> unequal per-pair bytes."""
        cfg = SampleSortConfig(keys_per_rank=300, data_mode="real", seed=3)
        system = SystemConfig.small_test_system(nranks=4)
        sim = XSim(system, record_trace=True)
        result = sim.run(samplesort, args=(cfg,))
        assert result.completed
        volumes = {}
        for m in sim.world.trace.messages(ctx=3):
            volumes.setdefault((m.src, m.dst), 0)
            volumes[(m.src, m.dst)] += m.nbytes
        sizes = [v for v in volumes.values() if v > 0]
        assert len(set(sizes)) > 1  # genuinely variable
