"""The unified scenario & runtime-backend layer (``repro.run``)."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.run import (
    XSIM_ENV_VARS,
    AttachedInstruments,
    Scenario,
    attach_instruments,
    backend_names,
    capped_shards,
    expand_matrix,
    get_backend,
    load_scenario_file,
    parse_dims,
    parse_set,
    run_scenario,
    run_sweep,
)
from repro.util.errors import ConfigurationError

SRC = Path(__file__).resolve().parent.parent / "src"
DOCS = Path(__file__).resolve().parent.parent / "docs"


def tiny(**overrides) -> Scenario:
    """A fast 8-rank scenario (sub-second serial run)."""
    base = dict(ranks=8, iterations=20, interval=10)
    base.update(overrides)
    return Scenario(**base)


# ----------------------------------------------------------------------
# layered resolution
# ----------------------------------------------------------------------
class TestResolutionPrecedence:
    def test_defaults_match_bare_cli(self):
        s = Scenario()
        assert (s.ranks, s.topology, s.app) == (64, "torus", "heat3d")
        assert (s.iterations, s.interval, s.seed, s.shards, s.jobs) == (
            1000, 1000, 0, 1, 1,
        )

    def test_file_overrides_defaults(self, tmp_path):
        f = tmp_path / "s.toml"
        f.write_text("[machine]\nranks = 16\n")
        s = Scenario.resolve(file=f, use_environment=False)
        assert s.ranks == 16
        assert s.topology == "torus"  # untouched default

    def test_env_overrides_file(self, tmp_path):
        f = tmp_path / "s.toml"
        f.write_text('[resilience]\nfailures = "1@5s"\n\n[execution]\nshards = 4\n')
        s = Scenario.resolve(
            file=f, environ={"XSIM_FAILURES": "2@9s", "XSIM_SHARDS": "2"}
        )
        assert s.failures == "2@9s"  # env replaces, not extends
        assert s.shards == 2

    def test_flags_override_env(self, tmp_path):
        f = tmp_path / "s.toml"
        f.write_text("[machine]\nranks = 16\n")
        s = Scenario.resolve(
            file=f,
            environ={"XSIM_FAILURES": "2@9s", "XSIM_JOBS": "3"},
            failures="5@1s",
            ranks=32,
        )
        assert s.failures == "5@1s"
        assert s.jobs == 3  # env layer, no flag
        assert s.ranks == 32  # flag beats file

    def test_none_override_means_not_given(self):
        assert Scenario.resolve(use_environment=False, ranks=None).ranks == 64

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario field"):
            Scenario.resolve(use_environment=False, rank_count=8)

    def test_flags_scenario_equals_toml_scenario(self, tmp_path):
        """A scenario built from CLI-style kwargs equals one from the
        equivalent TOML file — including the digest."""
        f = tmp_path / "s.toml"
        f.write_text(
            "[machine]\nranks = 8\n\n[app]\niterations = 20\ninterval = 10\n"
            '\n[resilience]\nfailures = "3@50s"\n'
        )
        from_file = Scenario.resolve(file=f, use_environment=False)
        from_flags = Scenario.resolve(
            use_environment=False, ranks=8, iterations=20, interval=10,
            failures="3@50s",
        )
        assert from_file == from_flags
        assert from_file.scenario_digest() == from_flags.scenario_digest()

    def test_bad_env_int_rejected(self):
        with pytest.raises(ConfigurationError, match="XSIM_SHARDS"):
            Scenario.resolve(environ={"XSIM_SHARDS": "many"})

    def test_shard_transport_from_environment(self):
        s = Scenario.resolve(
            environ={"XSIM_SHARDS": "2", "XSIM_SHARD_TRANSPORT": "shm"}
        )
        assert s.shard_transport == "shm"
        assert s.backend_name() == "sharded-shm"

    def test_bad_env_transport_rejected(self):
        with pytest.raises(ConfigurationError, match="XSIM_SHARD_TRANSPORT"):
            Scenario.resolve(environ={"XSIM_SHARD_TRANSPORT": "morse"})


# ----------------------------------------------------------------------
# serialization & digest
# ----------------------------------------------------------------------
class TestSerialization:
    def test_toml_round_trip(self):
        s = tiny(
            topology="mesh", dims=(3, 3), failures="1@5s", mttf=None,
            shards=2, shard_transport="inline", check=True, trace_out="t.json",
        )
        assert Scenario.from_toml(s.to_toml()) == s

    def test_round_trip_keeps_digest(self):
        s = tiny(mttf=3000.0, seed=7)
        assert Scenario.from_toml(s.to_toml()).scenario_digest() == s.scenario_digest()

    def test_dict_round_trip(self):
        s = tiny(dims=(2, 2, 2), topology="torus")
        assert Scenario.from_dict(s.to_dict()) == s

    def test_digest_changes_with_any_field(self):
        assert tiny().scenario_digest() != tiny(seed=1).scenario_digest()

    def test_unknown_table_and_key_rejected(self):
        with pytest.raises(ConfigurationError, match=r"unknown scenario table"):
            Scenario.from_toml("[wardrobe]\nnarnia = true\n")
        with pytest.raises(ConfigurationError, match="machine.rank_count"):
            Scenario.from_toml("[machine]\nrank_count = 8\n")

    def test_trace_out_implies_observe(self):
        assert tiny(trace_out="t.json").observe is True

    def test_file_round_trip(self, tmp_path):
        s = tiny(failures="2@7s")
        path = tmp_path / "s.toml"
        s.to_toml_file(path)
        assert Scenario.from_toml_file(path) == s

    def test_sweep_table_loaded_and_validated(self, tmp_path):
        f = tmp_path / "s.toml"
        f.write_text("[machine]\nranks = 8\n\n[sweep]\ninterval = [10, 5]\n")
        scenario, grid = load_scenario_file(f, use_environment=False)
        assert scenario.ranks == 8
        assert grid == {"interval": [10, 5]}
        f.write_text("[sweep]\nwarp = [1]\n")
        with pytest.raises(ConfigurationError, match="unknown sweep field"):
            load_scenario_file(f, use_environment=False)


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class TestBackends:
    def test_registry_names(self):
        assert set(backend_names()) == {
            "serial", "sharded-inline", "sharded-fork", "sharded-shm",
        }

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            get_backend("quantum")

    def test_backend_name_derivation(self):
        assert tiny().backend_name() == "serial"
        assert tiny(shards=2).backend_name() == "sharded-fork"
        assert tiny(shards=2, shard_transport="inline").backend_name() == "sharded-inline"
        assert tiny(shards=2, shard_transport="shm").backend_name() == "sharded-shm"
        assert tiny(backend="serial").backend_name() == "serial"

    def test_unknown_transport_rejected_at_resolution(self):
        with pytest.raises(ConfigurationError, match="unknown shard transport"):
            tiny(shards=2, shard_transport="carrier-pigeon")

    def test_backend_transport_conflict(self):
        with pytest.raises(ConfigurationError, match="conflicts"):
            tiny(backend="sharded-fork", shard_transport="inline").backend_name()

    def test_serial_vs_sharded_inline_digest_parity(self):
        serial = run_scenario(tiny())
        sharded = run_scenario(tiny(shards=2, shard_transport="inline"))
        assert serial.digest() == sharded.digest()
        assert serial.scenario.scenario_digest() != sharded.scenario.scenario_digest()

    def test_restart_mode_with_schedule(self):
        outcome = run_scenario(tiny(iterations=40, failures="3@50s"))
        assert outcome.mode == "restart"
        assert outcome.completed
        assert outcome.run.f == 1
        summary = outcome.summary()
        assert summary["restarts"] == 1
        assert summary["result_digest"] == outcome.digest()

    def test_restart_digest_matches_across_backends(self):
        a = run_scenario(tiny(iterations=40, failures="3@50s"))
        b = run_scenario(
            tiny(iterations=40, failures="3@50s", shards=2, shard_transport="inline")
        )
        assert a.digest() == b.digest()

    def test_backend_execute_single_run(self):
        result = get_backend("serial").execute(tiny())
        assert result.completed

    def test_outcome_metadata_records_actual_transport(self):
        outcome = run_scenario(tiny(shards=2, shard_transport="inline"))
        assert outcome.metadata == {
            "shard_transport": "inline",
            "requested_transport": "inline",
            "transport_fallback": False,
            "nshards": 2,
        }
        # Execution facts stay out of the result digest: a serial run of
        # the same workload (empty metadata) produces the same digest.
        serial = run_scenario(tiny())
        assert serial.metadata == {}
        assert serial.digest() == outcome.digest()

    def test_outcome_metadata_in_restart_mode(self):
        outcome = run_scenario(
            tiny(iterations=40, failures="3@50s", shards=2, shard_transport="inline")
        )
        assert outcome.mode == "restart"
        assert outcome.metadata["shard_transport"] == "inline"
        assert outcome.metadata["transport_fallback"] is False

    def test_xsim_from_scenario_backend_described(self):
        from repro.core.simulator import XSim

        sim = XSim.from_scenario(tiny(shards=2, shard_transport="inline"))
        described = sim.describe_architecture()["backend"]
        assert described == {
            "name": "sharded-inline", "shards": 2, "shard_transport": "inline",
        }


class TestCappedShards:
    """Boundary cases of the jobs x shards CPU cap (satellite c)."""

    def test_exact_fit_is_untouched(self, monkeypatch):
        import repro.run.backends as backends

        monkeypatch.setattr(backends.os, "cpu_count", lambda: 8)
        assert capped_shards(4, jobs=2, transport="fork") == 4

    def test_inline_never_capped(self, monkeypatch):
        import repro.run.backends as backends

        monkeypatch.setattr(backends.os, "cpu_count", lambda: 1)
        assert capped_shards(64, jobs=64, transport="inline") == 64

    def test_jobs_beyond_cpus_clamp_to_one_shard(self, monkeypatch, capsys):
        import repro.run.backends as backends

        monkeypatch.setattr(backends.os, "cpu_count", lambda: 4)
        assert capped_shards(2, jobs=8, transport="fork", quiet=True) == 1
        assert capsys.readouterr().err == ""  # quiet suppresses the warning

    def test_undeterminable_cpu_count_caps_hard(self, monkeypatch, capsys):
        """os.cpu_count() may return None; the cap must neither crash nor
        oversubscribe — an unknown host is treated as one core."""
        import repro.run.backends as backends

        monkeypatch.setattr(backends.os, "cpu_count", lambda: None)
        for transport in ("fork", "shm"):
            assert capped_shards(4, jobs=1, transport=transport) == 1
            assert capped_shards(4, jobs=3, transport=transport) == 1
        assert "oversubscribe" in capsys.readouterr().err
        # The inline transport needs no extra processes, so it is exempt.
        assert capped_shards(4, jobs=3, transport="inline") == 4

    def test_single_shard_skips_the_cap(self, monkeypatch):
        import repro.run.backends as backends

        monkeypatch.setattr(backends.os, "cpu_count", lambda: None)
        assert capped_shards(1, jobs=64, transport="fork") == 1

    def test_cli_reexport_is_registry_function(self):
        from repro import cli
        from repro.run import backends

        assert cli.capped_shards is backends.capped_shards


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_attach_to_sim(self):
        from repro.core.harness.config import SystemConfig
        from repro.core.simulator import XSim

        sim = XSim(
            SystemConfig.small_test_system(nranks=2),
            check=True, record_events=True, observe=True,
        )
        assert sim.checker is not None and sim.engine.check is not None
        assert sim.event_trace is not None and sim.engine.event_trace is sim.event_trace
        assert sim.observer is not None and sim.engine.obs is sim.observer

    def test_detached_by_default(self):
        from repro.core.harness.config import SystemConfig
        from repro.core.simulator import XSim

        sim = XSim(SystemConfig.small_test_system(nranks=2), check=False)
        assert sim.checker is None and sim.event_trace is None and sim.observer is None

    def test_attach_returns_slots(self):
        from repro.core.harness.config import SystemConfig
        from repro.core.simulator import XSim

        sim = XSim(SystemConfig.small_test_system(nranks=2), check=False)
        attached = attach_instruments(sim, check=False)
        assert isinstance(attached, AttachedInstruments)
        assert attached.checker is None

    def test_observer_instance_passes_through(self):
        from repro.obs import Observer
        from repro.run.instruments import coerce_observer

        obs = Observer(detail=True)
        assert coerce_observer(obs) is obs
        assert coerce_observer(None) is None
        assert coerce_observer(False) is None
        assert coerce_observer(True, detail=True).detail is True

    def test_duplicate_hook_rejected(self):
        from repro.run.instruments import INSTRUMENTS, instrument

        assert set(INSTRUMENTS) >= {"sanitizer", "event-trace", "observer"}
        with pytest.raises(ConfigurationError, match="duplicate"):
            instrument("sanitizer")(lambda host, **kw: None)


# ----------------------------------------------------------------------
# sweeps
# ----------------------------------------------------------------------
class TestSweep:
    def test_expand_matrix_order(self):
        cells = expand_matrix(tiny(), {"interval": [10, 5], "seed": [0, 1]})
        assert [(c.interval, c.seed) for c in cells] == [
            (10, 0), (10, 1), (5, 0), (5, 1),
        ]

    def test_parse_set_coercion(self):
        assert parse_set("mttf=6000,3000") == ("mttf", [6000.0, 3000.0])
        assert parse_set("interval=500,250") == ("interval", [500, 250])
        assert parse_set("check=1,0") == ("check", [True, False])
        assert parse_set("dims=2x2,4x1") == ("dims", [(2, 2), (4, 1)])

    def test_parse_set_errors(self):
        with pytest.raises(ConfigurationError, match="unknown sweep field"):
            parse_set("warp=9")
        with pytest.raises(ConfigurationError, match="expected field="):
            parse_set("interval")

    @pytest.mark.parametrize(
        "text, expected",
        [
            # Regression: booleans used to fall through as raw strings for
            # any spelling outside a hand-maintained set, so "False" became
            # a truthy non-empty string and silently changed the digest.
            ("check=False,True", ("check", [False, True])),
            ("observe=no,yes", ("observe", [False, True])),
            ("record_events=off,on", ("record_events", [False, True])),
            ("trace_detail=0,1", ("trace_detail", [False, True])),
            # Scientific notation: floats parse, integral forms coerce to int.
            ("mttf=1e-3,2.5e3", ("mttf", [0.001, 2500.0])),
            ("slowdown=1e3", ("slowdown", [1000.0])),
            ("iterations=1e3,250", ("iterations", [1000, 250])),
            ("seed=2e1", ("seed", [20])),
            # Strings and dims stay themselves.
            ("app=ring,heat3d", ("app", ["ring", "heat3d"])),
            ("failures=3@5s", ("failures", ["3@5s"])),
            ("dims=4x2", ("dims", [(4, 2)])),
        ],
    )
    def test_parse_set_coercion_table(self, text, expected):
        name, values = parse_set(text)
        assert (name, values) == expected
        # types must be exact (True is not 1 for digest purposes)
        assert [type(v) for v in values] == [type(v) for v in expected[1]]

    def test_parse_set_rejects_non_integral_int(self):
        with pytest.raises(ConfigurationError, match="integer sweep field"):
            parse_set("iterations=2.5")
        with pytest.raises(ConfigurationError, match="bad boolean"):
            parse_set("check=maybe")
        with pytest.raises(ConfigurationError, match="bad value"):
            parse_set("interval=fast")

    def test_run_sweep_serial_matches_grid(self):
        pairs = run_sweep(tiny(), {"seed": [0, 1]})
        assert len(pairs) == 2
        (s0, r0), (s1, r1) = pairs
        assert (s0.seed, s1.seed) == (0, 1)
        assert r0["completed"] and r1["completed"]
        assert r0["result_digest"] == r1["result_digest"]  # seed only feeds injection

    def test_runspec_scenario_task_round_trips(self):
        from repro.core.harness.parallel import CampaignExecutor, RunSpec

        spec = RunSpec.from_scenario(tiny())
        assert spec.kind == "scenario"
        [summary] = CampaignExecutor(max_workers=1).run([spec])
        assert summary["completed"] is True
        assert summary["backend"] == "serial"
        assert summary["result_digest"] == run_scenario(tiny()).digest()


# ----------------------------------------------------------------------
# dims (satellite d)
# ----------------------------------------------------------------------
class TestDims:
    def test_parse_dims(self):
        assert parse_dims("8x8x4") == (8, 8, 4)
        assert parse_dims("16,3") == (16, 3)
        with pytest.raises(ConfigurationError, match="bad dims"):
            parse_dims("8xbig")
        with pytest.raises(ConfigurationError, match=">= 1"):
            parse_dims("8x0")

    def test_valid_dims_build_topology(self):
        s = tiny(topology="mesh", dims=(3, 3))
        topo = s.system_config().make_topology()
        assert type(topo).__name__ == "MeshTopology"
        assert topo.nnodes == 9  # the grid's capacity; >= the 8 ranks

    def test_undersized_dims_rejected_with_counts(self):
        with pytest.raises(ConfigurationError) as err:
            Scenario(ranks=64, dims=(2, 2, 2))
        assert "hold 8 nodes but the job needs 64" in str(err.value)

    def test_fattree_dims_are_arity_levels(self):
        tiny(topology="fattree", dims=(4, 2))  # 4^2 = 16 >= 8: fine
        with pytest.raises(ConfigurationError, match=r"4\^1 holds 4 nodes"):
            tiny(topology="fattree", dims=(4, 1))
        with pytest.raises(ConfigurationError, match="arity must be >= 2"):
            tiny(topology="fattree", dims=(1, 8))

    def test_star_takes_no_dims(self):
        with pytest.raises(ConfigurationError, match="takes no dims"):
            tiny(topology="star", dims=(8,))

    def test_cli_dims_error_message(self, capsys):
        assert main(["app", "--ranks", "64", "--dims", "2x2x2"]) == 2
        err = capsys.readouterr().err
        assert "2x2x2" in err and "needs 64" in err

    def test_cli_dims_accepted(self, capsys):
        assert main([
            "app", "--app", "ring", "--ranks", "4", "--iterations", "2",
            "--dims", "2x2", "--topology", "mesh",
        ]) == 0
        assert "completed=True" in capsys.readouterr().out


# ----------------------------------------------------------------------
# CLI integration (scenario flag, sweep subcommand, arch backend line)
# ----------------------------------------------------------------------
class TestScenarioCli:
    def test_app_scenario_file_and_digest(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("XSIM_FAILURES", raising=False)
        f = tmp_path / "s.toml"
        f.write_text(
            "[machine]\nranks = 8\n\n[app]\niterations = 20\ninterval = 10\n"
        )
        assert main(["app", "--scenario", str(f), "--digest"]) == 0
        out = capsys.readouterr().out
        serial = re.search(r"result digest: ([0-9a-f]{64})", out).group(1)
        assert main([
            "app", "--scenario", str(f), "--digest",
            "--shards", "2", "--shard-transport", "inline",
        ]) == 0
        out = capsys.readouterr().out
        assert re.search(r"result digest: ([0-9a-f]{64})", out).group(1) == serial

    def test_app_flags_override_scenario_file(self, tmp_path, capsys):
        f = tmp_path / "s.toml"
        f.write_text("[machine]\nranks = 8\n\n[app]\nname = \"heat3d\"\n")
        assert main([
            "app", "--scenario", str(f), "--app", "ring", "--iterations", "2",
            "--ranks", "4",
        ]) == 0
        assert "4 processes" in capsys.readouterr().out

    def test_sweep_cli_table(self, tmp_path, capsys):
        f = tmp_path / "s.toml"
        f.write_text(
            "[machine]\nranks = 8\n\n[app]\niterations = 20\ninterval = 10\n"
            "\n[sweep]\nseed = [0, 1]\n"
        )
        assert main(["sweep", "--scenario", str(f), "--set", "interval=10,5"]) == 0
        out = capsys.readouterr().out
        assert "4 scenarios" in out and "digest" in out

    def test_sweep_without_grid_errors(self, capsys):
        assert main(["sweep", "--ranks", "8"]) == 2
        assert "nothing to sweep" in capsys.readouterr().err

    def test_arch_renders_backend(self, capsys):
        assert main([
            "arch", "--ranks", "16", "--shards", "2", "--shard-transport", "inline",
        ]) == 0
        out = capsys.readouterr().out
        assert "execution backend: sharded-inline (2 shards, inline transport)" in out

    def test_arch_default_backend_serial(self, capsys):
        assert main(["arch", "--ranks", "16"]) == 0
        assert "execution backend: serial (1 shard)" in capsys.readouterr().out


# ----------------------------------------------------------------------
# env-var registry vs docs vs code (satellite a)
# ----------------------------------------------------------------------
class TestEnvVarDocs:
    def test_env_var_docs_match_code(self):
        """Every XSIM_* variable the source reads is in the registry, and
        every registry entry is documented in the INTERNALS table."""
        from repro.run.envvars import XSIM_ENV_SWITCHES

        registered = set(XSIM_ENV_VARS) | set(XSIM_ENV_SWITCHES)
        read_in_source = set()
        for path in SRC.rglob("*.py"):
            for name in re.findall(r"\bXSIM_[A-Z_]+\b", path.read_text()):
                if name not in ("XSIM_ENV_VARS", "XSIM_ENV_SWITCHES"):
                    read_in_source.add(name)
        assert read_in_source == registered

        table = (DOCS / "INTERNALS.md").read_text()
        documented = set(re.findall(r"^\| `(XSIM_[A-Z_]+)` \|", table, re.M))
        assert documented == registered

    def test_registry_flags_exist_in_cli(self):
        from repro.cli import build_parser

        help_text = build_parser().format_help()
        app_help = [
            a for a in build_parser()._subparsers._group_actions[0].choices.items()
        ]
        flags = {v.cli_flag for v in XSIM_ENV_VARS.values()}
        all_help = help_text + "".join(p.format_help() for _, p in app_help)
        for flag in flags:
            assert flag in all_help

    def test_scenario_fields_cover_registry(self):
        from dataclasses import fields

        names = {f.name for f in fields(Scenario)}
        assert {v.field for v in XSIM_ENV_VARS.values()} <= names
