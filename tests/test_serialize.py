"""Result serialization (JSON/CSV records)."""

import json

import pytest

from repro.apps.naive_cr import NaiveCrConfig, naive_cr
from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig
from repro.core.harness.experiment import Table2Cell
from repro.core.harness.serialize import (
    failure_run_record,
    simulation_result_record,
    table2_records,
    to_csv,
    to_json,
)
from repro.core.restart import RestartDriver
from tests.conftest import run_app


def simple_app(mpi):
    yield from mpi.init()
    yield from mpi.compute(1.0)
    yield from mpi.finalize()


class TestSimulationRecord:
    def test_clean_run(self):
        run = run_app(simple_app, nranks=3)
        rec = simulation_result_record(run.result)
        assert rec["completed"] is True
        assert rec["aborted"] is False
        assert rec["nranks"] == 3
        assert rec["failures"] == []
        assert rec["vp_time_max"] >= rec["vp_time_min"]
        json.dumps(rec)  # JSON-safe

    def test_failed_run(self):
        run = run_app(simple_app, nranks=2, failures=[(1, 0.5)])
        rec = simulation_result_record(run.result)
        assert rec["aborted"] is True
        assert rec["failures"] == [[1, 1.0]]


class TestFailureRunRecord:
    def test_segments_flattened(self):
        driver = RestartDriver(
            SystemConfig.small_test_system(nranks=2),
            naive_cr,
            make_args=lambda store: (NaiveCrConfig(work=20.0, tau=5.0, delta=0.1), store),
            schedule=FailureSchedule.of((1, 12.0)),
        )
        run = driver.run()
        rec = failure_run_record(run)
        assert rec["completed"] is True
        assert rec["restarts"] == 1
        assert len(rec["segments"]) == 2
        assert rec["segments"][1]["start_time"] == rec["segments"][0]["exit_time"]
        json.dumps(rec)


class TestTable2Records:
    CELLS = [
        Table2Cell(None, 1000, 5248.0, None, 0, None),
        Table2Cell(6000.0, 500, 5251.0, 7882.0, 1, 3941.0),
    ]

    def test_paper_columns_joined(self):
        recs = table2_records(self.CELLS)
        assert recs[0]["paper_e1"] == 5248.0
        assert recs[1]["paper_e2"] == 7957.0
        assert recs[1]["f"] == 1

    def test_without_paper(self):
        recs = table2_records(self.CELLS, include_paper=False)
        assert "paper_e1" not in recs[0]


class TestFormats:
    def test_to_json_roundtrip(self, tmp_path):
        path = tmp_path / "out.json"
        text = to_json([{"a": 1}], path=str(path))
        assert json.loads(text) == [{"a": 1}]
        assert json.loads(path.read_text()) == [{"a": 1}]

    def test_to_csv_layout(self):
        csv = to_csv([{"b": 1.5, "a": None}, {"a": "x,y", "b": 2}])
        lines = csv.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == ",1.500000"
        assert lines[2] == '"x,y",2'

    def test_to_csv_empty(self):
        assert to_csv([]) == ""
