"""The sharded conservative-parallel engine: parity, guards, plumbing.

The engine's contract (``repro.pdes.sharded``) is *observational
equivalence with the serial engine* under the paper's timing model: for
any shard count and any lookahead within the derived safe bound, a
sharded run produces the same per-rank event sequences, the same result
digest, and the same resilience behavior (failure broadcast, detection,
abort) as ``shards=1``.  ``xsim-run simcheck`` verifies one 64-rank
configuration; this module sweeps the parameter space with Hypothesis
and exercises the integration seams (restart driver, tree collectives,
fork-transport pickling, CLI capping).
"""

import math
import multiprocessing as mp
import os
import pickle
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.checkpoint.store import CheckpointStore
from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig
from repro.core.harness.experiment import result_digest
from repro.core.restart import RestartDriver
from repro.core.simulator import XSim
from repro.mpi.errhandler import ERRORS_ARE_FATAL, ERRORS_RETURN
from repro.mpi.messages import EAGER, RTS
from repro.pdes.sharded import (
    ShardWorker,
    derive_lookahead,
    derive_lookahead_matrix,
    partition_ranks,
    partition_ranks_topology,
)
from repro.pdes.shmring import RingPeerDead, ShmRing, pack_envelope, unpack_envelope
from repro.util.errors import ConfigurationError, ShardWorkerDied

NRANKS = 16
ITERATIONS = 12
INTERVAL = 5

fork_required = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="fork start method unavailable on this platform",
)


def paper_network(nranks, **overrides):
    """The NetworkModel of a paper system (optionally reconfigured)."""
    return XSim(SystemConfig.paper_system(nranks=nranks, **overrides)).world.network


def build_sim(nranks=NRANKS, collective="linear", **xsim_kwargs):
    system = SystemConfig.paper_system(nranks=nranks, collective_algorithm=collective)
    workload = HeatConfig.paper_workload(
        checkpoint_interval=INTERVAL, nranks=nranks, iterations=ITERATIONS
    )
    return XSim(system, **xsim_kwargs), workload


def run_heat(
    nranks=NRANKS,
    failure=None,
    collective="linear",
    la_frac=None,
    **xsim_kwargs,
):
    """One paper-timing heat3d run; returns ``(sim, result)``.

    ``la_frac`` scales the shard lookahead to a fraction of the derived
    safe bound (requires ``shards`` in ``xsim_kwargs``).
    """
    sim, workload = build_sim(nranks=nranks, collective=collective, **xsim_kwargs)
    if la_frac is not None:
        parts = partition_ranks(nranks, xsim_kwargs["shards"])
        sim.shard_lookahead = la_frac * derive_lookahead(sim.world.network, parts)
    if failure is not None:
        sim.inject_failure(*failure)
    result = sim.run(heat3d, args=(workload, CheckpointStore()))
    return sim, result


@pytest.fixture(scope="module")
def failure_point():
    """A mid-run (rank, time) failure measured off the clean exit time."""
    _, clean = run_heat()
    return (NRANKS // 3, 0.4 * clean.exit_time)


@pytest.fixture(scope="module")
def serial_digests(failure_point):
    """Serial reference digests, computed once: {with_failure: digest}."""
    return {
        False: result_digest(run_heat()[1]),
        True: result_digest(run_heat(failure=failure_point)[1]),
    }


class TestPartition:
    def test_covers_all_ranks_contiguously(self):
        for nshards in (1, 2, 3, 4, 7):
            parts = partition_ranks(64, nshards)
            assert len(parts) == nshards
            flat = [r for part in parts for r in part]
            assert flat == list(range(64))

    def test_balanced_within_one(self):
        for nranks, nshards in ((64, 4), (65, 4), (10, 3)):
            sizes = [len(p) for p in partition_ranks(nranks, nshards)]
            assert sum(sizes) == nranks
            assert max(sizes) - min(sizes) <= 1

    def test_lookahead_bounded_by_cross_shard_latency(self):
        sim, _ = build_sim()
        parts = partition_ranks(NRANKS, 4)
        la = derive_lookahead(sim.world.network, parts)
        assert la > 0.0
        # No cross-shard pair may be reachable faster than the lookahead.
        net = sim.world.network
        for k, part in enumerate(parts):
            for other in parts[k + 1 :]:
                for src in part:
                    for dst in other:
                        assert net.wire_latency(src, dst) >= la


class TestLookaheadMatrix:
    """The per-shard-pair lookahead matrix: safety and window economy.

    ``derive_lookahead_matrix`` must dominate the global bound (every
    entry is a *wider* window than ``derive_lookahead`` would grant),
    stay symmetric, satisfy the triangle inequality (a reaction relayed
    through a third shard is still covered), and — run against the same
    workload — never need *more* coordination windows than the uniform
    global scheme while keeping digests bit-identical on every transport.
    """

    @settings(max_examples=10, deadline=None)
    @given(
        nranks=st.integers(min_value=8, max_value=96),
        nshards=st.integers(min_value=2, max_value=6),
        rpn=st.sampled_from([1, 2, 4]),
    )
    def test_dominates_global_bound_symmetric_triangular(self, nranks, nshards, rpn):
        network = paper_network(nranks, ranks_per_node=rpn)
        parts = partition_ranks(nranks, nshards)
        if len(parts) < 2:
            return
        la = derive_lookahead(network, parts)
        matrix = derive_lookahead_matrix(network, parts)
        n = len(parts)
        for j in range(n):
            assert math.isinf(matrix[j][j])
            for k in range(n):
                if j == k:
                    continue
                assert matrix[j][k] >= la
                assert matrix[j][k] == matrix[k][j]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    if len({i, j, k}) == 3:
                        assert matrix[i][k] <= matrix[i][j] + matrix[j][k] + 1e-15

    def test_distant_shards_get_wider_windows(self):
        """On a torus the matrix is genuinely non-uniform: some pair's
        bound exceeds the global minimum (that is the whole point)."""
        network = paper_network(64)
        parts = partition_ranks(64, 4)
        matrix = derive_lookahead_matrix(network, parts)
        la = derive_lookahead(network, parts)
        off = [matrix[j][k] for j in range(4) for k in range(4) if j != k]
        assert min(off) == pytest.approx(la)
        assert max(off) > la

    def test_matrix_never_needs_more_windows_than_global(self):
        """Same run, matrix windows vs the uniform-global override."""
        sim_m, res_m = run_heat(nranks=64, shards=4, shard_transport="inline")
        sim_g, res_g = run_heat(
            nranks=64, shards=4, shard_transport="inline", la_frac=1.0
        )
        assert result_digest(res_m) == result_digest(res_g)
        assert sim_m.shard_stats.windows <= sim_g.shard_stats.windows
        assert sim_m.shard_stats.lookahead_max > sim_m.shard_stats.lookahead
        # The override collapses the matrix to the uniform global bound.
        assert sim_g.shard_stats.lookahead_max == sim_g.shard_stats.lookahead

    @pytest.mark.parametrize(
        "transport",
        [
            "inline",
            pytest.param("fork", marks=fork_required),
            pytest.param("shm", marks=fork_required),
        ],
    )
    @pytest.mark.parametrize("scheme", ["matrix", "global"])
    def test_digest_parity_across_schemes_and_transports(
        self, serial_digests, transport, scheme
    ):
        _, res = run_heat(
            shards=3,
            shard_transport=transport,
            la_frac=1.0 if scheme == "global" else None,
        )
        assert result_digest(res) == serial_digests[False]


class TestTopologyPartition:
    """Topology-aware shard cuts: contiguity, balance, wire awareness."""

    def test_contiguous_and_covering(self):
        network = paper_network(64)
        for nshards in (2, 3, 4, 7):
            parts = partition_ranks_topology(64, nshards, network)
            assert len(parts) == nshards
            assert [r for part in parts for r in part] == list(range(64))

    def test_balance_bounded_by_slack(self):
        for nranks, nshards in ((64, 4), (65, 4), (96, 5)):
            network = paper_network(nranks)
            parts = partition_ranks_topology(nranks, nshards, network)
            base = nranks // nshards
            width = int(base * 0.125)
            sizes = [len(p) for p in parts]
            assert sum(sizes) == nranks
            assert max(sizes) - min(sizes) <= 1 + 2 * width

    def test_cuts_land_on_node_boundaries(self):
        """With several ranks per node, splitting a node across shards
        costs more than any link cut — boundaries snap to node edges."""
        network = paper_network(64, ranks_per_node=4)
        parts = partition_ranks_topology(64, 4, network)
        for part in parts[1:]:
            assert part[0] % 4 == 0

    def test_featureless_topology_keeps_equal_split(self):
        network = paper_network(64, topology_kind="crossbar")
        assert partition_ranks_topology(64, 4, network) == partition_ranks(64, 4)

    def test_parity_with_packed_nodes(self):
        """Node-aligned cuts + per-pair lookahead on a multi-rank-per-node
        machine still reproduce the serial digest."""

        def run(**kw):
            system = SystemConfig.paper_system(nranks=32, ranks_per_node=4)
            workload = HeatConfig.paper_workload(
                checkpoint_interval=INTERVAL, nranks=32, iterations=ITERATIONS
            )
            sim = XSim(system, **kw)
            return sim.run(heat3d, args=(workload, CheckpointStore()))

        serial = run()
        sharded = run(shards=4, shard_transport="inline")
        assert result_digest(sharded) == result_digest(serial)


class TestShmRing:
    """The SPSC shared-memory ring and the packed envelope codec."""

    def test_records_round_trip_through_wraparound(self):
        ring = ShmRing(capacity=64)
        try:
            for i in range(40):  # total bytes written >> capacity
                payload = bytes([i % 251]) * (i % 23)
                ring.write(payload)
                assert ring.read() == payload
        finally:
            ring.destroy()

    def test_record_larger_than_capacity_streams(self):
        ring = ShmRing(capacity=64)
        blob = os.urandom(1500)
        try:
            writer = threading.Thread(target=ring.write, args=(blob,))
            writer.start()
            out = ring.read()
            writer.join()
            assert out == blob
        finally:
            ring.destroy()

    def test_blocked_read_detects_dead_peer(self):
        ring = ShmRing(capacity=64)
        try:
            with pytest.raises(RingPeerDead):
                ring.read(alive=lambda: False)
        finally:
            ring.destroy()

    PAYLOADS = [
        None,
        True,
        False,
        7,
        -(1 << 62),
        1 << 80,  # beyond i64: pickle fallback
        3.141592653589793,
        b"\x00raw bytes\xff",
        "unicodé ☃",
        np.arange(6, dtype=np.float64).reshape(2, 3),
        np.array([1, -2, 3], dtype=np.int32),
        np.array(2.5),  # 0-d array
        {"pickle": ["fallback", 1]},
    ]

    @pytest.mark.parametrize(
        "payload", PAYLOADS, ids=[f"p{i}" for i in range(len(PAYLOADS))]
    )
    def test_eager_envelope_round_trips_exactly(self, payload):
        env = ("a", 1.5, 0, 3, 4, 7, 64, payload, (0.25, 3, 9), EAGER, None)
        out = unpack_envelope(pack_envelope(env))
        assert out[:7] == env[:7]
        assert out[8:] == env[8:]
        got = out[7]
        if isinstance(payload, np.ndarray):
            assert isinstance(got, np.ndarray)
            assert got.dtype == payload.dtype
            assert got.shape == payload.shape
            assert np.array_equal(got, payload)
            assert got.flags.writeable  # serial path hands out a copy
        else:
            assert type(got) is type(payload)
            assert got == payload

    def test_rts_envelope_keeps_protocol_and_req_id(self):
        env = ("a", 2.25, 1, 8, 9, 42, 1 << 20, None, (2.0, 8, 77), RTS, 12)
        assert unpack_envelope(pack_envelope(env)) == env

    def test_rendezvous_completion_round_trips(self):
        env = ("r", 5, 42, 1.25)
        assert unpack_envelope(pack_envelope(env)) == env


@fork_required
class TestWorkerLiveness:
    """A dying worker must raise ShardWorkerDied, not hang the run."""

    @pytest.mark.parametrize("transport", ["fork", "shm"])
    def test_dead_worker_is_detected_and_named(self, transport, monkeypatch):
        original = ShardWorker.run_window

        def dying(self, end):
            if self.shard_id == 1:
                os._exit(1)  # simulates an OOM-killed / crashed worker
            return original(self, end)

        monkeypatch.setattr(ShardWorker, "run_window", dying)
        with pytest.raises(ShardWorkerDied, match="shard 1") as excinfo:
            run_heat(shards=3, shard_transport=transport)
        assert excinfo.value.shard_id == 1
        # The setup reply completed (round 1) but no window ever did.
        assert excinfo.value.last_round >= 1
        assert "last completed" in str(excinfo.value)


class TestTransportFallback:
    """fork/shm on a fork-less host: fall back loudly, never silently."""

    @pytest.mark.parametrize("requested", ["fork", "shm"])
    def test_fallback_is_surfaced_once_everywhere(
        self, serial_digests, monkeypatch, requested
    ):
        import repro.pdes.sharded as sharded_mod

        monkeypatch.setattr(
            sharded_mod.mp, "get_all_start_methods", lambda: ["spawn"]
        )
        with pytest.warns(RuntimeWarning, match="falling back"):
            sim, res = run_heat(shards=2, shard_transport=requested)
        stats = sim.shard_stats
        assert stats.transport == "inline"
        assert stats.requested_transport == requested
        assert stats.transport_fallback is True
        entries = [e for e in sim.engine.log.entries if e.category == "shards"]
        assert len(entries) == 1
        assert "falling back" in entries[0].message
        # The fallback is an execution fact, never a result fact.
        assert result_digest(res) == serial_digests[False]

    def test_no_fallback_flags_on_a_normal_run(self):
        sim, _ = run_heat(shards=2, shard_transport="inline")
        assert sim.shard_stats.transport_fallback is False
        assert sim.shard_stats.requested_transport == "inline"
        assert [e for e in sim.engine.log.entries if e.category == "shards"] == []


class TestParityProperty:
    """Any shard count x any safe lookahead x clean/failure == serial."""

    @settings(max_examples=8, deadline=None)
    @given(
        shards=st.integers(min_value=2, max_value=5),
        la_frac=st.floats(min_value=0.05, max_value=1.0),
        with_failure=st.booleans(),
    )
    def test_digest_matches_serial(
        self, serial_digests, failure_point, shards, la_frac, with_failure
    ):
        _, res = run_heat(
            failure=failure_point if with_failure else None,
            shards=shards,
            shard_transport="inline",
            la_frac=la_frac,
        )
        assert result_digest(res) == serial_digests[with_failure]

    def test_rank_traces_match_serial_with_failure(self, failure_point):
        serial_sim, serial = run_heat(failure=failure_point, record_events=True)
        sharded_sim, sharded = run_heat(
            failure=failure_point,
            shards=4,
            shard_transport="inline",
            record_events=True,
        )
        assert serial_sim.event_trace.diff_ranks(sharded_sim.event_trace) is None
        assert sharded.event_count == serial.event_count

    def test_fork_transport_matches_serial(self, serial_digests, failure_point):
        _, res = run_heat(failure=failure_point, shards=3, shard_transport="fork")
        assert result_digest(res) == serial_digests[True]

    def test_tree_collectives_parity(self):
        """The bench scenario (tree collectives) holds parity too."""
        _, serial = run_heat(collective="tree")
        _, sharded = run_heat(
            collective="tree", shards=4, shard_transport="inline"
        )
        assert result_digest(sharded) == result_digest(serial)
        assert sharded.event_count == serial.event_count


class TestRestartCycleParity:
    """Failure -> abort -> restart-from-checkpoint, serial vs sharded."""

    def test_driver_segments_match_serial(self, failure_point):
        def driver(**kw):
            system = SystemConfig.paper_system(nranks=NRANKS)
            workload = HeatConfig.paper_workload(
                checkpoint_interval=INTERVAL, nranks=NRANKS, iterations=ITERATIONS
            )
            return RestartDriver(
                system,
                heat3d,
                make_args=lambda store: (workload, store),
                schedule=FailureSchedule.of(failure_point),
                **kw,
            )

        serial = driver().run()
        sharded = driver(shards=4, shard_transport="inline").run()
        assert serial.restarts == 1  # the failure really forced a cycle
        assert sharded.completed == serial.completed
        assert sharded.restarts == serial.restarts
        assert sharded.f == serial.f
        assert sharded.e2 == serial.e2
        assert [result_digest(s.result) for s in sharded.segments] == [
            result_digest(s.result) for s in serial.segments
        ]


class TestGuards:
    def test_analytic_collectives_rejected(self):
        with pytest.raises(ConfigurationError, match="analytic"):
            run_heat(collective="analytic", shards=2, shard_transport="inline")

    def test_comm_trace_rejected(self):
        with pytest.raises(ConfigurationError, match="record_trace"):
            run_heat(shards=2, shard_transport="inline", record_trace=True)

    def test_soft_errors_rejected(self):
        sim, workload = build_sim(shards=2, shard_transport="inline")
        sim.soft_errors  # instantiating the injector is the opt-in
        with pytest.raises(ConfigurationError, match="soft-error"):
            sim.run(heat3d, args=(workload, CheckpointStore()))

    @pytest.mark.parametrize("bad_frac", [0.0, -1.0, 1.5])
    def test_lookahead_override_bounds(self, bad_frac):
        with pytest.raises(ConfigurationError, match="lookahead override"):
            run_heat(shards=2, shard_transport="inline", la_frac=bad_frac)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError, match="transport"):
            run_heat(shards=2, shard_transport="smoke-signals")


class TestForkPickling:
    def test_errhandler_sentinels_keep_identity(self):
        for sentinel in (ERRORS_ARE_FATAL, ERRORS_RETURN):
            assert pickle.loads(pickle.dumps(sentinel)) is sentinel


class TestCappedShards:
    def test_inline_never_capped(self, monkeypatch):
        from repro import cli

        monkeypatch.setattr(cli.os, "cpu_count", lambda: 2)
        assert cli.capped_shards(8, jobs=4, transport="inline") == 8

    def test_fork_capped_to_cpu_budget(self, monkeypatch, capsys):
        from repro import cli

        monkeypatch.setattr(cli.os, "cpu_count", lambda: 4)
        assert cli.capped_shards(8, jobs=2, transport="fork") == 2
        assert "oversubscribe" in capsys.readouterr().err

    def test_fit_is_untouched(self, monkeypatch, capsys):
        from repro import cli

        monkeypatch.setattr(cli.os, "cpu_count", lambda: 8)
        assert cli.capped_shards(4, jobs=2, transport="fork") == 4
        assert capsys.readouterr().err == ""
