"""The sharded conservative-parallel engine: parity, guards, plumbing.

The engine's contract (``repro.pdes.sharded``) is *observational
equivalence with the serial engine* under the paper's timing model: for
any shard count and any lookahead within the derived safe bound, a
sharded run produces the same per-rank event sequences, the same result
digest, and the same resilience behavior (failure broadcast, detection,
abort) as ``shards=1``.  ``xsim-run simcheck`` verifies one 64-rank
configuration; this module sweeps the parameter space with Hypothesis
and exercises the integration seams (restart driver, tree collectives,
fork-transport pickling, CLI capping).
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.checkpoint.store import CheckpointStore
from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig
from repro.core.harness.experiment import result_digest
from repro.core.restart import RestartDriver
from repro.core.simulator import XSim
from repro.mpi.errhandler import ERRORS_ARE_FATAL, ERRORS_RETURN
from repro.pdes.sharded import derive_lookahead, partition_ranks
from repro.util.errors import ConfigurationError

NRANKS = 16
ITERATIONS = 12
INTERVAL = 5


def build_sim(nranks=NRANKS, collective="linear", **xsim_kwargs):
    system = SystemConfig.paper_system(nranks=nranks, collective_algorithm=collective)
    workload = HeatConfig.paper_workload(
        checkpoint_interval=INTERVAL, nranks=nranks, iterations=ITERATIONS
    )
    return XSim(system, **xsim_kwargs), workload


def run_heat(
    nranks=NRANKS,
    failure=None,
    collective="linear",
    la_frac=None,
    **xsim_kwargs,
):
    """One paper-timing heat3d run; returns ``(sim, result)``.

    ``la_frac`` scales the shard lookahead to a fraction of the derived
    safe bound (requires ``shards`` in ``xsim_kwargs``).
    """
    sim, workload = build_sim(nranks=nranks, collective=collective, **xsim_kwargs)
    if la_frac is not None:
        parts = partition_ranks(nranks, xsim_kwargs["shards"])
        sim.shard_lookahead = la_frac * derive_lookahead(sim.world.network, parts)
    if failure is not None:
        sim.inject_failure(*failure)
    result = sim.run(heat3d, args=(workload, CheckpointStore()))
    return sim, result


@pytest.fixture(scope="module")
def failure_point():
    """A mid-run (rank, time) failure measured off the clean exit time."""
    _, clean = run_heat()
    return (NRANKS // 3, 0.4 * clean.exit_time)


@pytest.fixture(scope="module")
def serial_digests(failure_point):
    """Serial reference digests, computed once: {with_failure: digest}."""
    return {
        False: result_digest(run_heat()[1]),
        True: result_digest(run_heat(failure=failure_point)[1]),
    }


class TestPartition:
    def test_covers_all_ranks_contiguously(self):
        for nshards in (1, 2, 3, 4, 7):
            parts = partition_ranks(64, nshards)
            assert len(parts) == nshards
            flat = [r for part in parts for r in part]
            assert flat == list(range(64))

    def test_balanced_within_one(self):
        for nranks, nshards in ((64, 4), (65, 4), (10, 3)):
            sizes = [len(p) for p in partition_ranks(nranks, nshards)]
            assert sum(sizes) == nranks
            assert max(sizes) - min(sizes) <= 1

    def test_lookahead_bounded_by_cross_shard_latency(self):
        sim, _ = build_sim()
        parts = partition_ranks(NRANKS, 4)
        la = derive_lookahead(sim.world.network, parts)
        assert la > 0.0
        # No cross-shard pair may be reachable faster than the lookahead.
        net = sim.world.network
        for k, part in enumerate(parts):
            for other in parts[k + 1 :]:
                for src in part:
                    for dst in other:
                        assert net.wire_latency(src, dst) >= la


class TestParityProperty:
    """Any shard count x any safe lookahead x clean/failure == serial."""

    @settings(max_examples=8, deadline=None)
    @given(
        shards=st.integers(min_value=2, max_value=5),
        la_frac=st.floats(min_value=0.05, max_value=1.0),
        with_failure=st.booleans(),
    )
    def test_digest_matches_serial(
        self, serial_digests, failure_point, shards, la_frac, with_failure
    ):
        _, res = run_heat(
            failure=failure_point if with_failure else None,
            shards=shards,
            shard_transport="inline",
            la_frac=la_frac,
        )
        assert result_digest(res) == serial_digests[with_failure]

    def test_rank_traces_match_serial_with_failure(self, failure_point):
        serial_sim, serial = run_heat(failure=failure_point, record_events=True)
        sharded_sim, sharded = run_heat(
            failure=failure_point,
            shards=4,
            shard_transport="inline",
            record_events=True,
        )
        assert serial_sim.event_trace.diff_ranks(sharded_sim.event_trace) is None
        assert sharded.event_count == serial.event_count

    def test_fork_transport_matches_serial(self, serial_digests, failure_point):
        _, res = run_heat(failure=failure_point, shards=3, shard_transport="fork")
        assert result_digest(res) == serial_digests[True]

    def test_tree_collectives_parity(self):
        """The bench scenario (tree collectives) holds parity too."""
        _, serial = run_heat(collective="tree")
        _, sharded = run_heat(
            collective="tree", shards=4, shard_transport="inline"
        )
        assert result_digest(sharded) == result_digest(serial)
        assert sharded.event_count == serial.event_count


class TestRestartCycleParity:
    """Failure -> abort -> restart-from-checkpoint, serial vs sharded."""

    def test_driver_segments_match_serial(self, failure_point):
        def driver(**kw):
            system = SystemConfig.paper_system(nranks=NRANKS)
            workload = HeatConfig.paper_workload(
                checkpoint_interval=INTERVAL, nranks=NRANKS, iterations=ITERATIONS
            )
            return RestartDriver(
                system,
                heat3d,
                make_args=lambda store: (workload, store),
                schedule=FailureSchedule.of(failure_point),
                **kw,
            )

        serial = driver().run()
        sharded = driver(shards=4, shard_transport="inline").run()
        assert serial.restarts == 1  # the failure really forced a cycle
        assert sharded.completed == serial.completed
        assert sharded.restarts == serial.restarts
        assert sharded.f == serial.f
        assert sharded.e2 == serial.e2
        assert [result_digest(s.result) for s in sharded.segments] == [
            result_digest(s.result) for s in serial.segments
        ]


class TestGuards:
    def test_analytic_collectives_rejected(self):
        with pytest.raises(ConfigurationError, match="analytic"):
            run_heat(collective="analytic", shards=2, shard_transport="inline")

    def test_comm_trace_rejected(self):
        with pytest.raises(ConfigurationError, match="record_trace"):
            run_heat(shards=2, shard_transport="inline", record_trace=True)

    def test_soft_errors_rejected(self):
        sim, workload = build_sim(shards=2, shard_transport="inline")
        sim.soft_errors  # instantiating the injector is the opt-in
        with pytest.raises(ConfigurationError, match="soft-error"):
            sim.run(heat3d, args=(workload, CheckpointStore()))

    @pytest.mark.parametrize("bad_frac", [0.0, -1.0, 1.5])
    def test_lookahead_override_bounds(self, bad_frac):
        with pytest.raises(ConfigurationError, match="lookahead override"):
            run_heat(shards=2, shard_transport="inline", la_frac=bad_frac)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError, match="transport"):
            run_heat(shards=2, shard_transport="smoke-signals")


class TestForkPickling:
    def test_errhandler_sentinels_keep_identity(self):
        for sentinel in (ERRORS_ARE_FATAL, ERRORS_RETURN):
            assert pickle.loads(pickle.dumps(sentinel)) is sentinel


class TestCappedShards:
    def test_inline_never_capped(self, monkeypatch):
        from repro import cli

        monkeypatch.setattr(cli.os, "cpu_count", lambda: 2)
        assert cli.capped_shards(8, jobs=4, transport="inline") == 8

    def test_fork_capped_to_cpu_budget(self, monkeypatch, capsys):
        from repro import cli

        monkeypatch.setattr(cli.os, "cpu_count", lambda: 4)
        assert cli.capped_shards(8, jobs=2, transport="fork") == 2
        assert "oversubscribe" in capsys.readouterr().err

    def test_fit_is_untouched(self, monkeypatch, capsys):
        from repro import cli

        monkeypatch.setattr(cli.os, "cpu_count", lambda: 8)
        assert cli.capped_shards(4, jobs=2, transport="fork") == 4
        assert capsys.readouterr().err == ""
