"""simcheck: event tracing, the invariant sanitizer, differential harness.

Covers the determinism/replay tooling in :mod:`repro.check`: the event
trace round-trips and diffs, the sanitizer stays silent on clean runs and
actually fires on corrupted state (including a deliberately re-introduced
checkpoint-cleanup bug), and the differential harness's cross-mode
equivalences hold.
"""

import json
import zlib

import numpy as np
import pytest

from repro.check import InvariantViolation, checking_enabled
from repro.check.sanitizer import Sanitizer, verify_store, verify_store_cleaned, write_dump
from repro.check.trace import EventTrace
from repro.core.checkpoint.store import CheckpointStore, FileState
from repro.core.harness.config import SystemConfig
from repro.core.harness.experiment import result_digest
from repro.core.simulator import XSim
from repro.pdes.engine import Engine
from repro.util.rng import RngStreams


def _heat(nranks, iterations, interval=10, failure=None, **kwargs):
    from repro.apps.heat3d import HeatConfig, heat3d

    system = SystemConfig.small_test_system(nranks=nranks)
    workload = HeatConfig.paper_workload(
        checkpoint_interval=interval, nranks=nranks, iterations=iterations
    )
    sim = XSim(system, **kwargs)
    if failure is not None:
        sim.inject_failure(*failure)
    result = sim.run(heat3d, args=(workload, CheckpointStore()))
    return sim, result


class TestEventTrace:
    def test_identical_traces_have_no_divergence(self):
        a = EventTrace([(1.0, 1, 0, "arrive", 2), (2.0, 2, 1, "do_wake", -1)])
        b = EventTrace(list(a.entries))
        assert a.diff(b) is None
        assert a.digest() == b.digest()

    def test_divergence_reports_first_mismatch(self):
        a = EventTrace([(1.0, 1, 0, "arrive", 2), (2.0, 2, 1, "do_wake", -1)])
        b = EventTrace([(1.0, 1, 0, "arrive", 2), (2.0, 3, 1, "do_wake", -1)])
        d = a.diff(b)
        assert d is not None
        assert d.index == 1
        assert d.expected[1] == 2 and d.actual[1] == 3
        assert "diverge" in d.report()

    def test_length_mismatch_is_a_divergence(self):
        a = EventTrace([(1.0, 1, 0, "arrive", 2)])
        b = EventTrace([(1.0, 1, 0, "arrive", 2), (2.0, 2, 1, "do_wake", -1)])
        d = a.diff(b)
        assert d is not None and d.index == 1
        assert d.expected is None and d.actual == (2.0, 2, 1, "do_wake", -1)

    def test_save_load_round_trip_is_bit_identical(self, tmp_path):
        sim, _ = _heat(8, 20, record_events=True)
        trace = sim.event_trace
        assert len(trace) > 0
        path = str(tmp_path / "trace.txt")
        trace.save(path)
        loaded = EventTrace.load(path)
        assert loaded.entries == trace.entries  # exact floats via float.hex
        assert loaded.digest() == trace.digest()

    def test_load_rejects_non_trace_files(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("not a trace\n")
        with pytest.raises(ValueError, match="not an xsim event trace"):
            EventTrace.load(str(path))

    def test_record_replay_zero_divergence_with_failure(self):
        """Acceptance scenario: heat3d at 64 ranks with one injected
        failure records and replays with zero divergence."""
        _, clean = _heat(64, 20)
        failure = (21, 0.4 * clean.exit_time)
        sim1, res1 = _heat(64, 20, failure=failure, check=True, record_events=True)
        sim2, res2 = _heat(64, 20, failure=failure, check=True, record_events=True)
        assert res1.failures and res1.failures == res2.failures
        assert sim1.event_trace.diff(sim2.event_trace) is None
        assert result_digest(res1) == result_digest(res2)

    def test_different_runs_do_diverge(self):
        sim1, _ = _heat(8, 20, record_events=True)
        sim2, _ = _heat(8, 20, failure=(3, 10.0), record_events=True)
        assert sim1.event_trace.diff(sim2.event_trace) is not None


class TestSanitizerCleanRuns:
    def test_clean_heat_run_reports_zero_violations(self):
        sim, result = _heat(8, 30, check=True)
        assert result.completed
        assert sim.checker is not None
        assert sim.checker.checks > 0

    def test_failure_run_reports_zero_violations(self):
        _, clean = _heat(27, 30)
        sim, result = _heat(27, 30, failure=(13, 0.5 * clean.exit_time), check=True)
        assert result.aborted
        assert sim.checker.checks > 0

    def test_analytic_collectives_run_clean(self):
        from repro.apps.heat3d import HeatConfig, heat3d

        system = SystemConfig.small_test_system(
            nranks=8, collective_algorithm="analytic"
        )
        workload = HeatConfig.paper_workload(
            checkpoint_interval=10, nranks=8, iterations=20
        )
        sim = XSim(system, check=True)
        result = sim.run(heat3d, args=(workload, CheckpointStore()))
        assert result.completed
        assert sim.checker.checks > 0


class TestSanitizerCatchesBugs:
    def test_heap_pop_ordering_violation(self):
        engine = Engine()
        check = Sanitizer(engine)
        check.on_dispatch(5.0, 1, None)
        with pytest.raises(InvariantViolation, match="heap-pop-ordering"):
            check.on_dispatch(4.0, 2, None)

    def test_equal_time_seq_regression_violation(self):
        engine = Engine()
        check = Sanitizer(engine)
        check.on_dispatch(5.0, 4, None)
        with pytest.raises(InvariantViolation, match="heap-pop-ordering"):
            check.on_dispatch(5.0, 3, None)

    def test_vp_clock_monotonicity_violation(self):
        from repro.pdes.context import VirtualProcess

        engine = Engine()
        vp = VirtualProcess(rank=0, gen=iter(()), start_time=0.0)
        check = Sanitizer(engine)
        vp.clock = 5.0
        check.on_dispatch(5.0, 1, vp)
        vp.clock = 3.0
        with pytest.raises(InvariantViolation, match="vp-clock-monotonicity"):
            check.on_dispatch(6.0, 2, vp)

    def test_violation_carries_structured_dump(self, tmp_path):
        engine = Engine()
        check = Sanitizer(engine)
        check.on_dispatch(5.0, 1, None)
        with pytest.raises(InvariantViolation) as excinfo:
            check.on_dispatch(4.0, 2, None)
        dump = excinfo.value.dump
        for key in ("now", "event_count", "checks", "log_tail", "vps", "heap_head"):
            assert key in dump
        # and it serializes to JSON for CI artifacts
        path = str(tmp_path / "dump.json")
        write_dump(path, excinfo.value)
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["invariant"] == excinfo.value.invariant
        assert payload["dump"]["checks"] == dump["checks"]

    def test_verify_store_rejects_inconsistent_namespace(self):
        s = CheckpointStore()
        s.begin_write(1, 0, None, 8)
        s._files[(1, 0)].rank = 5  # corrupt the namespace key/field pairing
        with pytest.raises(InvariantViolation, match="store-namespace"):
            verify_store(s)

    def test_reintroduced_subset_cleanup_bug_is_caught(self, monkeypatch):
        """Deliberately re-introduce the pre-fix subset semantics of
        ``is_valid`` (ranks >= nranks ignored): the post-cleanup audit
        must flag the leftover wide set, because it re-derives validity
        from the raw namespace instead of trusting ``is_valid``."""

        def subset_is_valid(self, ckpt_id, nranks):
            return all(
                self.state_of(ckpt_id, r) is FileState.COMPLETE for r in range(nranks)
            )

        monkeypatch.setattr(CheckpointStore, "is_valid", subset_is_valid)
        s = CheckpointStore()
        for r in range(4):  # leftover set from a wider job
            s.begin_write(50, r, None, 8)
            s.commit_write(50, r)
        assert s.cleanup_incomplete(nranks=2) == []  # the bug: set survives
        with pytest.raises(InvariantViolation, match="store-cleanup-exact-set"):
            verify_store_cleaned(s, 2)

    def test_verify_store_cleaned_accepts_exact_sets(self):
        s = CheckpointStore()
        for r in range(2):
            s.begin_write(10, r, None, 8)
            s.commit_write(10, r)
        s.cleanup_incomplete(nranks=2)
        verify_store_cleaned(s, 2)  # must not raise


class TestWiring:
    def test_env_var_enables_checking(self, monkeypatch):
        monkeypatch.delenv("XSIM_CHECK", raising=False)
        assert not checking_enabled()
        assert XSim(SystemConfig.small_test_system(nranks=2)).checker is None
        monkeypatch.setenv("XSIM_CHECK", "1")
        assert checking_enabled()
        sim = XSim(SystemConfig.small_test_system(nranks=2))
        assert sim.checker is not None
        assert sim.engine.check is sim.checker
        assert sim.world.check is sim.checker

    def test_explicit_check_overrides_env(self, monkeypatch):
        monkeypatch.setenv("XSIM_CHECK", "1")
        assert XSim(SystemConfig.small_test_system(nranks=2), check=False).checker is None
        monkeypatch.setenv("XSIM_CHECK", "0")
        assert not checking_enabled()
        assert XSim(SystemConfig.small_test_system(nranks=2), check=True).checker is not None

    def test_restart_driver_audits_store_under_check(self):
        from repro.apps.heat3d import HeatConfig, heat3d
        from repro.core.restart import RestartDriver

        system = SystemConfig.small_test_system(nranks=8)
        workload = HeatConfig.paper_workload(
            checkpoint_interval=10, nranks=8, iterations=30
        )
        driver = RestartDriver(
            system,
            heat3d,
            make_args=lambda store: (workload, store),
            schedule=None,
            mttf=200.0,
            seed=3,
            check=True,
        )
        run = driver.run()
        assert run.completed
        verify_store_cleaned(run.store, 8)


class TestSpawnChild:
    def test_matches_seed_sequence_spawn_semantics(self):
        streams = RngStreams(1234)
        parent = np.random.SeedSequence(
            entropy=1234, spawn_key=(zlib.crc32(b"finject"),)
        )
        children = parent.spawn(10)
        for i in (0, 3, 9):
            expected = np.random.Generator(np.random.PCG64(children[i])).random()
            assert streams.spawn_child("finject", i).random() == expected

    def test_first_draws_pairwise_distinct(self):
        draws = [
            float(RngStreams(0).spawn_child("finject", i).random()) for i in range(100)
        ]
        assert len(set(draws)) == 100

    def test_fresh_generator_each_call(self):
        streams = RngStreams(7)
        assert (
            streams.spawn_child("x", 0).random() == streams.spawn_child("x", 0).random()
        )

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            RngStreams(0).spawn_child("x", -1)


class TestDifferentialHarness:
    def test_run_all_passes_and_writes_no_artifacts(self, tmp_path):
        from repro.check.differential import run_all

        artifacts = tmp_path / "artifacts"
        results = run_all(jobs=2, artifacts_dir=str(artifacts))
        assert [r.name for r in results] == [
            "rerun",
            "coalescing",
            "trace-replay",
            "campaign-parallel",
            "executor-fallback",
            "collectives",
            "sharded-parity",
            "obs-parity",
            "scenario-parity",
            "flat-parity",
            "cache-parity",
        ]
        failed = [r for r in results if not r.passed]
        assert not failed, "\n".join(str(r) for r in failed)
        assert not artifacts.exists()  # artifacts only appear on failure

    def test_failing_check_writes_artifacts(self, tmp_path, monkeypatch):
        import repro.check.differential as differential

        def fake_rerun(*args, **kwargs):
            return differential.CheckResult(
                "rerun", False, "forced failure", artifacts={"rerun.txt": "boom\n"}
            )

        monkeypatch.setattr(differential, "check_rerun", fake_rerun)
        results = differential.run_all(jobs=2, artifacts_dir=str(tmp_path / "a"))
        assert not results[0].passed
        assert (tmp_path / "a" / "rerun.txt").read_text() == "boom\n"
        summary = (tmp_path / "a" / "summary.txt").read_text()
        assert "[FAIL] rerun" in summary

    def test_invariant_violation_inside_check_becomes_failure(self, monkeypatch):
        import repro.check.differential as differential

        def raising_check(*args, **kwargs):
            raise InvariantViolation("fake", "synthetic", dump={"checks": 1})

        monkeypatch.setattr(differential, "check_coalescing", raising_check)
        results = differential.run_all(jobs=2)
        by_name = {r.name: r for r in results}
        assert not by_name["coalescing"].passed
        assert "invariant violation" in by_name["coalescing"].detail
        assert "coalescing-violation.json" in by_name["coalescing"].artifacts


class TestCli:
    def test_record_and_replay_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        trace = str(tmp_path / "run.trace")
        base = ["app", "--app", "ring", "--ranks", "4", "--iterations", "5"]
        assert main(base + ["--record-trace", trace]) == 0
        assert "recorded" in capsys.readouterr().out
        assert main(base + ["--replay", trace]) == 0
        assert "replay matches" in capsys.readouterr().out

    def test_replay_divergence_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        trace = str(tmp_path / "run.trace")
        base = ["app", "--app", "ring", "--ranks", "4"]
        assert main(base + ["--iterations", "5", "--record-trace", trace]) == 0
        capsys.readouterr()
        assert main(base + ["--iterations", "6", "--replay", trace]) == 1
        assert "diverge" in capsys.readouterr().out

    def test_trace_flags_reject_mttf(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            ["app", "--app", "ring", "--ranks", "4", "--mttf", "100",
             "--record-trace", str(tmp_path / "t")]
        )
        assert rc == 2
        assert "--record-trace" in capsys.readouterr().err

    def test_check_flag_runs_sanitized(self, capsys):
        from repro.cli import main

        assert main(["app", "--app", "ring", "--ranks", "4", "--iterations", "5", "--check"]) == 0

    def test_simcheck_parser_wired(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["simcheck", "-j", "2", "--artifacts", "x"])
        assert args.jobs == 2 and args.artifacts == "x" and callable(args.fn)
