"""SimLog bounding: ring buffer and severity filtering."""

import io

import pytest

from repro.util.simlog import LEVELS, LogEntry, SimLog


class TestUnboundedDefault:
    def test_records_everything_in_order(self):
        log = SimLog()
        for i in range(5):
            log.log(float(i), "tick", f"n={i}")
        assert len(log) == 5
        assert log.dropped == 0
        assert [e.time for e in log] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_default_level_is_info(self):
        log = SimLog()
        log.log(0.0, "failure", "rank died", rank=3)
        (entry,) = log.entries
        assert entry.level == "info"

    def test_render_unchanged(self):
        entry = LogEntry(time=1.5, category="failure", rank=2, message="boom")
        assert entry.render() == "[xsim       1.500000s rank 2] failure: boom"


class TestRingBuffer:
    def test_keeps_newest_and_counts_drops(self):
        log = SimLog(max_entries=3)
        for i in range(7):
            log.log(float(i), "tick", f"n={i}")
        assert len(log) == 3
        assert log.dropped == 4
        assert [e.message for e in log] == ["n=4", "n=5", "n=6"]

    def test_no_drops_below_capacity(self):
        log = SimLog(max_entries=10)
        log.log(0.0, "tick", "one")
        assert len(log) == 1
        assert log.dropped == 0

    def test_category_query_sees_only_retained(self):
        log = SimLog(max_entries=2)
        log.log(0.0, "failure", "old")
        log.log(1.0, "abort", "mid")
        log.log(2.0, "failure", "new")
        assert [e.message for e in log.category("failure")] == ["new"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            SimLog(max_entries=0)


class TestLevelFilter:
    def test_below_threshold_discarded_entirely(self):
        stream = io.StringIO()
        log = SimLog(stream=stream, min_level="warning")
        log.log(0.0, "trace", "noise", level="debug")
        log.log(1.0, "note", "fyi", level="info")
        log.log(2.0, "failure", "rank died", level="warning")
        log.log(3.0, "abort", "fatal", level="error")
        assert [e.category for e in log] == ["failure", "abort"]
        # filtered entries are not echoed to the stream either
        assert "noise" not in stream.getvalue()
        assert "rank died" in stream.getvalue()

    def test_filtered_entries_do_not_count_as_dropped(self):
        log = SimLog(max_entries=5, min_level="info")
        log.log(0.0, "trace", "noise", level="debug")
        assert len(log) == 0
        assert log.dropped == 0

    def test_levels_are_totally_ordered(self):
        assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] < LEVELS["error"]

    def test_invalid_min_level_rejected(self):
        with pytest.raises(ValueError, match="min_level"):
            SimLog(min_level="verbose")

    def test_unknown_log_level_rejected(self):
        log = SimLog()
        with pytest.raises(KeyError):
            log.log(0.0, "x", "y", level="loud")


class TestSeededEntries:
    def test_seed_eviction_counts_as_dropped(self):
        """Regression: entries evicted by the maxlen cap at construction
        time were not counted, breaking len(log) + dropped == logged."""
        seed = [
            LogEntry(time=float(i), category="tick", rank=None, message=f"n={i}")
            for i in range(5)
        ]
        log = SimLog(max_entries=3, entries=seed)
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.message for e in log] == ["n=2", "n=3", "n=4"]

    def test_accounting_stays_exact_as_logging_continues(self):
        seed = [
            LogEntry(time=0.0, category="tick", rank=None, message="seed")
            for _ in range(4)
        ]
        log = SimLog(max_entries=2, entries=seed)
        for i in range(3):
            log.log(float(i), "tick", f"n={i}")
        assert len(log) + log.dropped == 4 + 3

    def test_seed_below_capacity_drops_nothing(self):
        seed = [LogEntry(time=0.0, category="tick", rank=None, message="x")]
        log = SimLog(max_entries=3, entries=seed)
        assert log.dropped == 0
        assert len(log) == 1
