"""XSim facade, SystemConfig builders, and the simlog."""

import io

import pytest

from repro.core.faults.schedule import ENV_VAR, FailureSchedule
from repro.core.harness.config import SystemConfig, balanced_dims
from repro.core.simulator import XSim
from repro.models.network.topology import (
    CrossbarTopology,
    FatTreeTopology,
    MeshTopology,
    StarTopology,
    TorusTopology,
)
from repro.util.errors import ConfigurationError, SimulationError
from repro.util.simlog import LogEntry, SimLog


def trivial_app(mpi):
    yield from mpi.init()
    yield from mpi.compute(1.0)
    yield from mpi.finalize()


class TestBalancedDims:
    def test_perfect_cube(self):
        assert balanced_dims(32768) == (32, 32, 32)
        assert balanced_dims(8) == (2, 2, 2)

    def test_covers_at_least_n(self):
        for n in (1, 5, 7, 100, 1000, 5000):
            import math

            dims = balanced_dims(n)
            assert math.prod(dims) >= n

    def test_near_cubic(self):
        dims = balanced_dims(1000)
        assert dims == (10, 10, 10)

    def test_two_dims(self):
        assert balanced_dims(16, ndims=2) == (4, 4)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            balanced_dims(0)


class TestSystemConfig:
    def test_paper_system_defaults(self):
        cfg = SystemConfig.paper_system()
        assert cfg.nranks == 32768
        assert cfg.topology_dims == (32, 32, 32)
        assert cfg.slowdown == 1000.0
        assert cfg.collective_algorithm == "linear"
        net = cfg.make_network()
        assert net.eager_threshold == 256_000
        assert net.system.latency == pytest.approx(1e-6)
        assert net.system.bandwidth == 32e9
        assert not cfg.filesystem.enabled  # Table II excludes FS overhead

    def test_paper_system_scaled(self):
        cfg = SystemConfig.paper_system(nranks=100)
        assert cfg.make_topology().nnodes >= 100

    def test_overheads_scaled_by_slowdown(self):
        cfg = SystemConfig.paper_system(send_overhead_native=1e-6, slowdown=1000.0)
        assert cfg.make_network().send_overhead == pytest.approx(1e-3)

    def test_topology_kinds(self):
        for kind, cls in [
            ("torus", TorusTopology),
            ("mesh", MeshTopology),
            ("fattree", FatTreeTopology),
            ("star", StarTopology),
            ("crossbar", CrossbarTopology),
        ]:
            cfg = SystemConfig(nranks=16, topology_kind=kind, topology_dims=None)
            assert isinstance(cfg.make_topology(), cls)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(nranks=4, topology_kind="hypercube").make_topology()

    def test_scaled_copy(self):
        cfg = SystemConfig.paper_system(nranks=64).scaled(collective_algorithm="tree")
        assert cfg.collective_algorithm == "tree"
        assert cfg.nranks == 64

    def test_small_test_system_is_fast(self):
        cfg = SystemConfig.small_test_system()
        assert cfg.slowdown == 1.0
        assert cfg.send_overhead_native == 0.0

    def test_invalid_nranks(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(nranks=0)


class TestXSim:
    def test_single_shot(self):
        sim = XSim(SystemConfig.small_test_system(nranks=2))
        sim.run(trivial_app)
        with pytest.raises(SimulationError):
            sim.run(trivial_app)

    def test_inject_rank_bounds_checked(self):
        sim = XSim(SystemConfig.small_test_system(nranks=2))
        with pytest.raises(SimulationError):
            sim.inject_failure(5, 1.0)

    def test_inject_from_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1@0.5s")
        sim = XSim(SystemConfig.small_test_system(nranks=2))
        schedule = sim.inject_from_environment()
        assert len(schedule) == 1
        result = sim.run(trivial_app)
        assert result.failures == [(1, 1.0)]

    def test_log_stream_receives_messages(self):
        stream = io.StringIO()
        sim = XSim(SystemConfig.small_test_system(nranks=2), log_stream=stream)
        sim.inject_failure(0, 0.5)
        sim.run(trivial_app)
        text = stream.getvalue()
        assert "failure" in text
        assert "rank 0" in text

    def test_nranks_override(self):
        sim = XSim(SystemConfig.small_test_system(nranks=8))
        result = sim.run(trivial_app, nranks=3)
        assert len(result.states) == 3

    def test_run_with_start_time(self):
        sim = XSim(SystemConfig.small_test_system(nranks=1), start_time=500.0)
        result = sim.run(trivial_app)
        assert result.exit_time == pytest.approx(501.0)


class TestArchitectureDescription:
    """Figure 1 reproduction: the layered architecture self-description."""

    def test_structure(self):
        sim = XSim(SystemConfig.paper_system(nranks=64))
        d = sim.describe_architecture()
        assert d["virtual_processes"] == 64
        assert d["topology"] == "TorusTopology"
        assert d["collective_algorithm"] == "linear"
        assert d["processor_slowdown"] == 1000.0
        assert len(d["layers"]) == 5
        assert "PDES engine" in " ".join(d["layers"])
        assert d["components"]["engine"] == "Engine"

    def test_render_ascii(self):
        sim = XSim(SystemConfig.paper_system(nranks=64))
        art = sim.render_architecture()
        assert "simulated MPI layer" in art
        assert "hardware models" in art
        assert "64 VPs" in art


class TestSimLog:
    def test_entries_and_filtering(self):
        log = SimLog()
        log.log(1.0, "failure", "boom", rank=3)
        log.log(2.0, "abort", "stop", rank=None)
        assert len(log) == 2
        assert log.category("failure")[0].rank == 3
        assert [e.category for e in log] == ["failure", "abort"]

    def test_render_format(self):
        e = LogEntry(time=1.5, category="failure", rank=7, message="x")
        assert "rank 7" in e.render()
        assert "failure" in e.render()

    def test_stream_echo(self):
        stream = io.StringIO()
        log = SimLog(stream=stream)
        log.log(0.0, "detect", "timeout", rank=1)
        assert "detect" in stream.getvalue()
