"""Descriptive statistics (repro.util.stats)."""

import math

import pytest

from repro.util.stats import SummaryStats, TimingStats, summarize


class TestSummarize:
    def test_basic_fields(self):
        s = summarize([1, 2, 2, 3, 100])
        assert s.count == 5
        assert s.total == 108
        assert s.minimum == 1
        assert s.maximum == 100
        assert s.mean == pytest.approx(21.6)
        assert s.median == 2
        assert s.mode == 2

    def test_population_stddev(self):
        s = summarize([2, 4, 4, 4, 5, 5, 7, 9])
        assert s.stddev == pytest.approx(2.0)  # the classic example

    def test_even_count_median(self):
        assert summarize([1, 2, 3, 4]).median == pytest.approx(2.5)

    def test_single_sample(self):
        s = summarize([7])
        assert (s.minimum, s.maximum, s.mean, s.median, s.mode) == (7, 7, 7, 7, 7)
        assert s.stddev == 0.0

    def test_mode_tie_breaks_to_smallest(self):
        assert summarize([5, 5, 3, 3, 9]).mode == 3

    def test_empty_gives_zero_variance_stats(self):
        # Degenerate strata are routine in adaptive exploration batches:
        # an empty sample must yield well-defined all-zero stats, not
        # raise or NaN-propagate into report rows.
        s = summarize([])
        assert s.count == 0
        assert (s.total, s.minimum, s.maximum) == (0.0, 0.0, 0.0)
        assert (s.mean, s.median, s.mode, s.stddev) == (0.0, 0.0, 0.0, 0.0)
        assert all(v == v for v in (s.mean, s.stddev))  # no NaN

    def test_single_sample_zero_stddev_exact(self):
        s = summarize([3.7])
        assert s.count == 1
        assert s.stddev == 0.0
        assert (s.minimum, s.maximum, s.mean, s.median, s.mode) == (
            3.7, 3.7, 3.7, 3.7, 3.7,
        )

    def test_rows_render_like_table1(self):
        s = summarize([1, 98, 17, 4, 4])
        fields = [f for f, _ in s.rows()]
        assert fields == [
            "Victims",
            "Injections",
            "Minimum",
            "Maximum",
            "Mean",
            "Median",
            "Mode",
            "Std.Dev.",
        ]

    def test_mean_formatting_two_decimals(self):
        s = summarize([1, 2])
        rows = dict(s.rows())
        assert rows["Mean"] == "1.50"


class TestTimingStats:
    def test_accumulates_min_max_avg(self):
        t = TimingStats()
        for v in (3.0, 1.0, 2.0):
            t.add(v)
        assert t.count == 3
        assert t.minimum == 1.0
        assert t.maximum == 3.0
        assert t.average == pytest.approx(2.0)

    def test_empty_average_is_nan(self):
        assert math.isnan(TimingStats().average)

    def test_is_online_no_storage(self):
        t = TimingStats()
        for i in range(10_000):
            t.add(float(i))
        assert t.count == 10_000
        assert t.average == pytest.approx(4999.5)
        assert not hasattr(t, "__dict__")  # slots: no per-sample storage


class TestSummaryStatsDataclass:
    def test_frozen(self):
        s = summarize([1.0])
        with pytest.raises(AttributeError):
            s.mean = 2.0  # type: ignore[misc]

    def test_equality(self):
        assert summarize([1, 2, 3]) == summarize([3, 2, 1])
        assert isinstance(summarize([1]), SummaryStats)
