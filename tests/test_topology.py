"""Interconnect topologies (repro.models.network.topology)."""

import pytest

from repro.models.network.topology import (
    CrossbarTopology,
    FatTreeTopology,
    MeshTopology,
    StarTopology,
    TorusTopology,
)
from repro.util.errors import ConfigurationError


class TestTorus:
    def test_paper_machine_size(self):
        t = TorusTopology((32, 32, 32))
        assert t.nnodes == 32768

    def test_coords_roundtrip(self):
        t = TorusTopology((4, 3, 2))
        for node in range(t.nnodes):
            assert t.node_at(t.coords(node)) == node

    def test_self_hops_zero(self):
        t = TorusTopology((4, 4, 4))
        assert t.hops(5, 5) == 0

    def test_neighbor_is_one_hop(self):
        t = TorusTopology((4, 4, 4))
        for nb in t.neighbors(0):
            assert t.hops(0, nb) == 1

    def test_wraparound_shortens_distance(self):
        t = TorusTopology((8,))
        assert t.hops(0, 7) == 1  # wrap, not 7

    def test_hops_symmetric(self):
        t = TorusTopology((4, 5))
        for a in range(t.nnodes):
            for b in range(t.nnodes):
                assert t.hops(a, b) == t.hops(b, a)

    def test_diameter(self):
        assert TorusTopology((32, 32, 32)).diameter() == 48
        assert TorusTopology((4, 4)).diameter() == 4

    def test_hops_never_exceed_diameter(self):
        t = TorusTopology((5, 4))
        d = t.diameter()
        assert max(t.hops(0, b) for b in range(t.nnodes)) <= d

    def test_six_neighbors_in_3d(self):
        t = TorusTopology((4, 4, 4))
        assert len(t.neighbors(17)) == 6

    def test_degenerate_dimension_skipped(self):
        t = TorusTopology((4, 1))
        assert len(t.neighbors(0)) == 2  # only the length-4 axis

    def test_size_two_dimension_single_neighbor(self):
        t = TorusTopology((2,))
        assert t.neighbors(0) == [1]  # -1 and +1 wrap to the same node

    def test_out_of_range_rejected(self):
        t = TorusTopology((2, 2))
        with pytest.raises(ConfigurationError):
            t.hops(0, 4)

    def test_bad_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            TorusTopology(())
        with pytest.raises(ConfigurationError):
            TorusTopology((0, 3))


class TestMesh:
    def test_no_wraparound(self):
        m = MeshTopology((8,))
        assert m.hops(0, 7) == 7

    def test_corner_has_fewer_neighbors(self):
        m = MeshTopology((4, 4))
        assert len(m.neighbors(0)) == 2
        assert len(m.neighbors(5)) == 4

    def test_diameter(self):
        assert MeshTopology((4, 4)).diameter() == 6

    def test_node_at_rejects_outside(self):
        m = MeshTopology((4, 4))
        with pytest.raises(ConfigurationError):
            m.node_at((4, 0))

    def test_mesh_distance_ge_torus(self):
        m, t = MeshTopology((6, 6)), TorusTopology((6, 6))
        for a in range(36):
            for b in range(36):
                assert m.hops(a, b) >= t.hops(a, b)


class TestFatTree:
    def test_size(self):
        assert FatTreeTopology(arity=4, levels=3).nnodes == 64

    def test_same_switch_two_hops(self):
        ft = FatTreeTopology(arity=4, levels=3)
        assert ft.hops(0, 1) == 2

    def test_cross_tree_distance(self):
        ft = FatTreeTopology(arity=4, levels=3)
        assert ft.hops(0, 63) == 6  # via the root

    def test_diameter(self):
        assert FatTreeTopology(arity=4, levels=3).diameter() == 6

    def test_neighbors_share_leaf_switch(self):
        ft = FatTreeTopology(arity=4, levels=2)
        assert ft.neighbors(5) == [4, 6, 7]

    def test_hops_symmetric(self):
        ft = FatTreeTopology(arity=3, levels=3)
        for a in range(0, ft.nnodes, 5):
            for b in range(0, ft.nnodes, 7):
                assert ft.hops(a, b) == ft.hops(b, a)

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigurationError):
            FatTreeTopology(arity=1, levels=2)


class TestStarAndCrossbar:
    def test_star_two_hops(self):
        s = StarTopology(10)
        assert s.hops(2, 7) == 2
        assert s.hops(3, 3) == 0

    def test_star_all_others_are_neighbors(self):
        assert len(StarTopology(10).neighbors(0)) == 9

    def test_crossbar_one_hop(self):
        x = CrossbarTopology(10)
        assert x.hops(2, 7) == 1
        assert x.diameter() == 1

    def test_single_node_machines(self):
        assert StarTopology(1).diameter() == 0
        assert CrossbarTopology(1).diameter() == 0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            StarTopology(0)
        with pytest.raises(ConfigurationError):
            CrossbarTopology(-1)
