"""Communication tracing (DUMPI analogue) and probe operations."""

import math

import pytest

from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.trace import ROW_HEADER, CommTrace
from tests.conftest import run_app


def traced_run(app, nranks=2, failures=None, **overrides):
    system = SystemConfig.small_test_system(nranks=nranks, **overrides)
    sim = XSim(system, record_trace=True)
    for rank, time in failures or []:
        sim.inject_failure(rank, time)
    result = sim.run(app)
    return sim.world.trace, result


def pingpong(mpi):
    yield from mpi.init()
    if mpi.rank == 0:
        yield from mpi.send(1, nbytes=100, tag=7)
        yield from mpi.recv(1, tag=8)
    else:
        yield from mpi.recv(0, tag=7)
        yield from mpi.send(0, nbytes=200, tag=8)
    yield from mpi.finalize()


class TestCommTrace:
    def test_records_posts_and_deliveries(self):
        trace, result = traced_run(pingpong)
        assert result.completed
        app_msgs = trace.messages(ctx=2)  # world pt2pt context
        assert len(app_msgs) == 2
        first = app_msgs[0]
        assert (first.src, first.dst, first.tag, first.nbytes) == (0, 1, 7, 100)
        assert first.delivered
        assert first.latency > 0

    def test_collective_traffic_traced_separately(self):
        trace, _ = traced_run(pingpong)
        # finalize's barrier runs on the collective context (odd)
        assert len(trace.messages(ctx=3)) == 2  # linear barrier, 2 ranks

    def test_traffic_matrix_and_totals(self):
        trace, _ = traced_run(pingpong)
        matrix = trace.traffic_matrix()
        assert matrix[(0, 1)] == 100
        assert matrix[(1, 0)] == 200
        assert trace.total_bytes() == 300
        assert trace.busiest_pairs(1)[0] == ((1, 0), 200)

    def test_dropped_messages_marked(self):
        """Messages to a failed process are deleted - and the trace says so."""

        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 0:
                yield from mpi.send(1, nbytes=64, tag=0)
                yield from mpi.compute(10.0)
            yield from mpi.finalize()

        trace, result = traced_run(app, failures=[(1, 0.0)])
        assert result.aborted
        dropped = trace.dropped_messages()
        assert len(dropped) == 1
        assert dropped[0].dst == 1
        assert not dropped[0].delivered

    def test_dropped_latency_is_nan_with_drop_time(self):
        """Regression: a dropped message's latency used to be computed
        from the drop instant, reporting a bogus finite 'delivery'
        latency.  The drop instant now lives in drop_time instead."""

        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 0:
                yield from mpi.send(1, nbytes=64, tag=0)
                yield from mpi.compute(10.0)
            yield from mpi.finalize()

        trace, _ = traced_run(app, failures=[(1, 0.0)])
        (rec,) = trace.dropped_messages()
        assert math.isnan(rec.latency)
        assert math.isnan(rec.arrival_time)
        assert not math.isnan(rec.drop_time)
        assert rec.drop_time >= rec.post_time
        # delivered messages: the other way around
        clean, _ = traced_run(pingpong)
        delivered = [r for r in clean if r.delivered]
        assert delivered
        assert all(math.isnan(r.drop_time) for r in delivered)
        assert all(r.latency > 0 for r in delivered)

    def test_drop_time_exported_in_rows(self):
        t = CommTrace()
        t.record_post(0, 1.0, 0, 1, 2, 0, 64, "eager")
        t.record_delivery(0, 3.5, dropped=True)
        row = t.to_rows()[0]
        assert row[ROW_HEADER.index("dropped")] == 1
        assert row[ROW_HEADER.index("drop_time")] == 3.5
        assert math.isnan(row[ROW_HEADER.index("arrival_time")])

    def test_busiest_pairs_ties_broken_by_endpoints(self):
        """Regression: equal-byte pairs were returned in traffic-matrix
        insertion order, so reports differed between runs with the same
        traffic."""
        t = CommTrace()
        # same byte totals, inserted in scrambled order
        for seq, (src, dst) in enumerate([(3, 0), (1, 2), (0, 3), (2, 1)]):
            t.record_post(seq, 0.0, src, dst, 2, 0, 100, "eager")
        assert t.busiest_pairs() == [
            ((0, 3), 100),
            ((1, 2), 100),
            ((2, 1), 100),
            ((3, 0), 100),
        ]
        assert t.busiest_pairs(2) == [((0, 3), 100), ((1, 2), 100)]

    def test_rows_export(self):
        trace, _ = traced_run(pingpong)
        rows = trace.to_rows()
        assert len(rows) == len(trace)
        assert len(rows[0]) == len(ROW_HEADER)
        assert rows == sorted(rows)  # seq order

    def test_time_window_filter(self):
        trace, _ = traced_run(pingpong)
        assert trace.messages(until=0.0) == []
        assert len(trace.messages(since=0.0)) == len(trace)

    def test_rendezvous_protocol_labelled(self):
        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 0:
                yield from mpi.send(1, nbytes=10_000, tag=0)
            else:
                yield from mpi.recv(0, tag=0)
            yield from mpi.finalize()

        trace, _ = traced_run(app, eager_threshold=100)
        big = trace.messages(src=0, dst=1, ctx=2)
        assert big[0].protocol == "rendezvous"

    def test_delivery_of_unknown_seq_counted_as_orphan(self):
        """Regression: unknown-seq deliveries were silently swallowed;
        they are now counted so the sanitizer can tell mid-run attach
        from a sequencing bug."""
        t = CommTrace()
        t.record_delivery(99, 1.0, dropped=False)  # no crash
        assert len(t) == 0
        assert t.orphan_deliveries == 1
        assert t.from_start is False

    def test_trace_attached_before_launch_is_from_start(self):
        trace, _ = traced_run(pingpong)
        assert trace.from_start
        assert trace.orphan_deliveries == 0

    def test_tracing_disabled_by_default(self):
        run = run_app(pingpong, nranks=2)
        assert run.world.trace is None


class TestProbe:
    def test_iprobe_sees_buffered_message(self):
        def app(mpi):
            yield from mpi.init()
            out = None
            if mpi.rank == 0:
                yield from mpi.send(1, nbytes=48, tag=5)
            else:
                yield from mpi.compute(1.0)  # message is buffered by now
                status = mpi.iprobe(0, tag=5)
                yield from mpi.recv(0, tag=5)
                after = mpi.iprobe()
                out = (status, after)
            yield from mpi.finalize()
            return out

        run = run_app(app, nranks=2)
        status, after = run.result.exit_values[1]
        assert status is not None
        assert (status.source, status.tag, status.nbytes) == (0, 5, 48)
        assert after is None  # consumed

    def test_iprobe_none_when_nothing_matches(self):
        def app(mpi):
            yield from mpi.init()
            found = mpi.iprobe(source=ANY_SOURCE, tag=ANY_TAG)
            yield from mpi.barrier()
            return found

        run = run_app(app, nranks=2)
        assert run.result.exit_values[0] is None

    def test_probe_blocks_until_message(self):
        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 0:
                yield from mpi.compute(2.0)
                yield from mpi.send(1, nbytes=8, tag=1)
                return None
            status = yield from mpi.probe(0, tag=1, poll_interval=0.1)
            arrival_clock = mpi.wtime()
            yield from mpi.recv(0, tag=1)
            return (status.nbytes, arrival_clock)

        system = SystemConfig.small_test_system(nranks=2, strict_finalize=False)
        run = run_app(app, nranks=2, system=system)
        nbytes, when = run.result.exit_values[1]
        assert nbytes == 8
        assert when == pytest.approx(2.0, abs=0.2)

    def test_probe_does_not_consume(self):
        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 0:
                yield from mpi.send(1, payload="keep", nbytes=4, tag=2)
                return None
            yield from mpi.probe(0, tag=2, poll_interval=0.01)
            yield from mpi.probe(0, tag=2, poll_interval=0.01)  # still there
            return (yield from mpi.recv(0, tag=2))

        system = SystemConfig.small_test_system(nranks=2, strict_finalize=False)
        run = run_app(app, nranks=2, system=system)
        assert run.result.exit_values[1] == "keep"

    def test_iprobe_respects_communicator(self):
        def app(mpi):
            yield from mpi.init()
            dup = yield from mpi.comm_dup()
            out = None
            if mpi.rank == 0:
                yield from mpi.send(1, nbytes=16, tag=3, comm=dup)
            else:
                yield from mpi.compute(1.0)
                on_world = mpi.iprobe(0, tag=3)
                on_dup = mpi.iprobe(0, tag=3, comm=dup)
                yield from mpi.recv(0, tag=3, comm=dup)
                out = (on_world, on_dup is not None)
            yield from mpi.finalize()
            return out

        run = run_app(app, nranks=2)
        on_world, on_dup = run.result.exit_values[1]
        assert on_world is None
        assert on_dup is True
