"""Unit parsing and formatting (repro.util.units)."""

import pytest

from repro.util.errors import ConfigurationError
from repro.util.units import format_size, format_time, parse_rate, parse_size, parse_time


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("42") == 42

    def test_paper_eager_threshold(self):
        assert parse_size("256kB") == 256_000

    def test_binary_prefix(self):
        assert parse_size("256KiB") == 262_144

    def test_decimal_prefixes(self):
        assert parse_size("1MB") == 1_000_000
        assert parse_size("2GB") == 2_000_000_000
        assert parse_size("1TB") == 10**12
        assert parse_size("1PB") == 10**15

    def test_binary_prefixes(self):
        assert parse_size("1MiB") == 2**20
        assert parse_size("1GiB") == 2**30
        assert parse_size("1TiB") == 2**40

    def test_case_insensitive(self):
        assert parse_size("64 mb") == parse_size("64MB")

    def test_whitespace(self):
        assert parse_size("  32 GB ") == 32_000_000_000

    def test_fractional(self):
        assert parse_size("1.5kB") == 1500

    def test_scientific(self):
        assert parse_size("1e3") == 1000

    def test_numeric_passthrough(self):
        assert parse_size(1024) == 1024
        assert parse_size(10.6) == 11

    def test_bare_b_suffix(self):
        assert parse_size("128B") == 128

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size(-1)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size("fast")

    def test_unknown_unit_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size("3 qB")


class TestParseTime:
    def test_paper_link_latency(self):
        assert parse_time("1us") == pytest.approx(1e-6)

    def test_micro_sign(self):
        assert parse_time("2µs") == pytest.approx(2e-6)

    def test_all_units(self):
        assert parse_time("1ns") == pytest.approx(1e-9)
        assert parse_time("1ms") == pytest.approx(1e-3)
        assert parse_time("1s") == 1.0
        assert parse_time("2min") == 120.0
        assert parse_time("1h") == 3600.0
        assert parse_time("1d") == 86400.0

    def test_bare_number_is_seconds(self):
        assert parse_time("3000") == 3000.0

    def test_thousands_separator(self):
        assert parse_time("3,000 s") == 3000.0

    def test_numeric_passthrough(self):
        assert parse_time(2.5) == 2.5

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_time("soon")

    def test_unknown_unit_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_time("3 fortnights")


class TestParseRate:
    def test_paper_bandwidth(self):
        assert parse_rate("32GB/s") == 32_000_000_000

    def test_without_per_second(self):
        assert parse_rate("1MB") == 1_000_000

    def test_numeric_passthrough(self):
        assert parse_rate(5e9) == 5e9


class TestFormat:
    def test_format_size_ranges(self):
        assert format_size(12) == "12 B"
        assert format_size(2_500) == "2.5 kB"
        assert format_size(3_000_000) == "3.0 MB"
        assert format_size(32e9) == "32.0 GB"
        assert format_size(5e12) == "5.0 TB"
        assert format_size(7e15) == "7.0 PB"

    def test_format_time_ranges(self):
        assert format_time(0.0) == "0 s"
        assert format_time(5e-9) == "5.0 ns"
        assert format_time(2e-6) == "2.0 us"
        assert format_time(3e-3) == "3.0 ms"
        assert format_time(1.5) == "1.500 s"
        assert format_time(5248.0) == "5,248 s"

    def test_roundtrip_examples(self):
        assert parse_time(format_time(5248.0).replace(",", "")) == 5248.0
