"""MpiWorld internals: sync points, multi-failure scenarios, placement,
and introspection helpers."""

import pytest

from repro.core.harness.config import SystemConfig
from repro.mpi.errhandler import ERRORS_RETURN, MpiError
from repro.pdes.context import VpState
from repro.util.errors import ConfigurationError, SimulationError
from tests.conftest import run_app


def finishing(body):
    def app(mpi, *args):
        yield from mpi.init()
        result = yield from body(mpi, *args)
        yield from mpi.finalize()
        return result

    return app


class TestSyncPoints:
    def test_all_members_complete_together(self):
        def app(mpi):
            yield from mpi.init()
            yield from mpi.compute(float(mpi.rank))
            result = yield from mpi.world.sync_arrive(mpi.vp, mpi.comm_world, "test", 0)
            yield from mpi.barrier()
            yield from mpi.finalize()
            return (result.alive, result.time)

        run = run_app(app, nranks=3)
        alives = {v[0] for v in run.result.exit_values.values()}
        times = {v[1] for v in run.result.exit_values.values()}
        assert alives == {(0, 1, 2)}
        assert len(times) == 1
        assert times.pop() >= 2.0  # last arrival

    def test_values_collected(self):
        def app(mpi):
            yield from mpi.init()
            result = yield from mpi.world.sync_arrive(
                mpi.vp, mpi.comm_world, "gatherish", 0, value=mpi.rank * 10
            )
            yield from mpi.finalize()
            return result.values

        run = run_app(app, nranks=3)
        assert run.result.exit_values[0] == {0: 0, 1: 10, 2: 20}

    def test_distinct_seq_distinct_points(self):
        def app(mpi):
            yield from mpi.init()
            r1 = yield from mpi.world.sync_arrive(mpi.vp, mpi.comm_world, "k", 0)
            r2 = yield from mpi.world.sync_arrive(mpi.vp, mpi.comm_world, "k", 1)
            yield from mpi.finalize()
            return (r1.time, r2.time)

        run = run_app(app, nranks=2)
        t1, t2 = run.result.exit_values[0]
        assert t2 > t1  # second point completes after the first

    def test_sync_cost_function_applied(self):
        def app(mpi):
            yield from mpi.init()
            result = yield from mpi.world.sync_arrive(
                mpi.vp, mpi.comm_world, "costly", 0, cost_fn=lambda n: 5.0
            )
            yield from mpi.finalize()
            return result.time

        run = run_app(app, nranks=2)
        assert run.result.exit_values[0] == pytest.approx(5.0)


class TestMultiFailure:
    def test_two_failures_both_recorded(self):
        def app(mpi):
            yield from mpi.init()
            yield from mpi.compute(10.0 + mpi.rank)
            yield from mpi.barrier()
            yield from mpi.finalize()

        run = run_app(app, nranks=4, failures=[(1, 1.0), (2, 2.0)])
        res = run.result
        assert res.aborted
        assert sorted(r for r, _ in res.failures) == [1, 2]
        # both activated at the ends of their compute phases
        times = dict(res.failures)
        assert times[1] == pytest.approx(11.0)
        assert times[2] == pytest.approx(12.0)

    def test_every_rank_failing_ends_simulation(self):
        def app(mpi):
            yield from mpi.init()
            yield from mpi.compute(5.0)
            yield from mpi.finalize()

        run = run_app(app, nranks=3, failures=[(0, 1.0), (1, 1.0), (2, 1.0)])
        res = run.result
        assert all(s is VpState.FAILED for s in res.states.values())
        assert not res.aborted  # nobody survived to detect and abort

    def test_failure_during_abort_sequence(self):
        """A failure scheduled after the abort has begun is harmless."""

        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 0:
                yield from mpi.abort()
            yield from mpi.compute(100.0)
            yield from mpi.finalize()

        run = run_app(app, nranks=3, failures=[(1, 50.0)])
        res = run.result
        assert res.aborted
        assert res.abort_time == pytest.approx(0.0)

    def test_failed_list_accumulates(self):
        observed = {}

        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 3:
                for _ in range(10):
                    yield from mpi.compute(1.0)
                observed[3] = dict(mpi.vp.failed_peers)
                yield from mpi.barrier()
            else:
                yield from mpi.compute(4.0 * (mpi.rank + 1))
                yield from mpi.barrier()
            yield from mpi.finalize()

        run = run_app(app, nranks=4, failures=[(0, 1.0), (1, 5.0)])
        assert observed[3] == {0: pytest.approx(4.0), 1: pytest.approx(8.0)}


class TestPlacementEndToEnd:
    def test_intra_node_messages_faster(self):
        """With 2 ranks per node, rank 0<->1 is on-node (cheap) while
        0<->2 crosses the system network."""
        system = SystemConfig.small_test_system(nranks=4, ranks_per_node=2)

        @finishing
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, nbytes=1_000_000, tag=1)
                yield from mpi.send(2, nbytes=1_000_000, tag=2)
                return None
            if mpi.rank == 1:
                yield from mpi.recv(0, tag=1)
                return mpi.wtime()
            if mpi.rank == 2:
                yield from mpi.recv(0, tag=2)
                return mpi.wtime()
            return None

        run = run_app(app, nranks=4, system=system)
        assert run.result.exit_values[1] < run.result.exit_values[2]

    def test_capacity_validated(self):
        system = SystemConfig.small_test_system(nranks=4)
        cfg = system.scaled(topology_kind="star", topology_dims=None)
        # machine of ceil(4/1)=4 nodes: asking for 5 ranks must fail
        from repro.core.simulator import XSim

        sim = XSim(cfg)
        with pytest.raises(ConfigurationError):
            sim.run(finishing(lambda mpi: iter(())), nranks=5)


class TestIntrospection:
    def test_alive_ranks_and_pending(self):
        probe = {}

        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 0:
                req = mpi.irecv(1, tag=9)
                yield from mpi.compute(1.0)
                probe["alive"] = mpi.world.alive_ranks()
                probe["pending"] = [r.describe() for r in mpi.world.pending_requests(0)]
                yield from mpi.send(1, nbytes=1, tag=5)
                yield from mpi.wait(req)
            else:
                yield from mpi.recv(0, tag=5)
                yield from mpi.send(0, nbytes=1, tag=9)
            yield from mpi.finalize()

        run = run_app(app, nranks=2)
        assert run.result.completed
        assert probe["alive"] == [0, 1]
        assert any("tag=9" in d for d in probe["pending"])

    def test_traffic_summary(self):
        def app(mpi):
            yield from mpi.init()
            if mpi.rank == 0:
                yield from mpi.send(1, nbytes=123, tag=0)
            else:
                yield from mpi.recv(0, tag=0)
            yield from mpi.finalize()

        run = run_app(app, nranks=2)
        summary = run.world.traffic_summary()
        assert summary["bytes_sent"] >= 123
        assert summary["messages_sent"] >= 3  # payload + finalize barrier

    def test_launch_twice_rejected(self):
        run = run_app(finishing(lambda mpi: iter(())), nranks=1)
        with pytest.raises(SimulationError):
            run.world.launch(lambda mpi: iter(()), 1)


class TestRevokeEdgeCases:
    def test_revoke_releases_pending_rendezvous_send(self):
        system = SystemConfig.small_test_system(
            nranks=2, eager_threshold=10, strict_finalize=False
        )

        def app(mpi):
            yield from mpi.init()
            mpi.set_errhandler(ERRORS_RETURN)
            if mpi.rank == 0:
                try:
                    yield from mpi.send(1, nbytes=1000, tag=0)  # blocks on CTS
                except MpiError as err:
                    return err.code
            else:
                yield from mpi.compute(1.0)
                yield from mpi.comm_revoke()
                return "revoked"
            return None

        run = run_app(app, nranks=2, system=system)
        from repro.mpi.constants import ERR_REVOKED

        assert run.result.exit_values[0] == ERR_REVOKED
